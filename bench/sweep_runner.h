/**
 * @file
 * Parallel sweep runner for the figure-reproduction benches.
 *
 * Every figure sweep is a set of (compiled workload, machine config)
 * points; each point is a pure function of its inputs — a fresh
 * Machine over a BackingStore reset to the compiled image — so points
 * execute concurrently on a small work-stealing thread pool and
 * aggregate deterministically in submission order. Simulated results
 * are bit-identical for any job count (enforced by test_golden_stats);
 * only harness wall-clock changes.
 *
 * Scheduler shape (reworked after the jobs=8 sweep measured *slower*
 * than serial on tiny points):
 *  - Sharded queues: one deque per worker, each behind its own
 *    mutex. Owners pop their front; thieves scan peers and pop the
 *    back. The global mutex is touched only to park idle workers
 *    between batches and to signal batch completion — never per task.
 *  - Chunking: a batch of n tasks is dealt as contiguous chunks of
 *    `max(1, n / (4 * jobs))` tasks, so per-task scheduling overhead
 *    amortizes over many tiny sweep points while leaving ~4 chunks
 *    per worker for stealing to balance.
 *  - Atomic accounting: the remaining-task count is a single atomic
 *    counter; the last decrement signals the submitting thread.
 *  - Fail-fast: the first task exception poisons the batch. Workers
 *    still drain every queued chunk, but un-started tasks are skipped
 *    (and counted — see skippedLast()); the first-submitted recorded
 *    exception is re-thrown from runAll() after the drain.
 *
 * Thread-safety contract leaned on here (audited with the original
 * pool PR):
 *  - CompiledWorkload is immutable after compileWorkload(): runs
 *    reset a per-worker BackingStore to its baked memory image
 *    instead of re-running the workload's init(), and
 *    Workload::verify() is const.
 *  - Machine, MemorySystem, MemAccessModel, StatSet and Rng hold all
 *    state per instance; the library has no mutable globals (the only
 *    function-local static is the const workloadNames() vector, whose
 *    C++11 magic-static init is thread-safe).
 *  - fatal() inside a point is caught on the worker and re-thrown
 *    from runAll() on the submitting thread, first-submitted first.
 */

#ifndef NUPEA_BENCH_SWEEP_RUNNER_H
#define NUPEA_BENCH_SWEEP_RUNNER_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace nupea
{
namespace bench
{

/** Knobs for the runner (CLI/env resolution in parseSweepArgs). */
struct SweepOptions
{
    SweepOptions() = default;
    explicit SweepOptions(int jobs_count) : jobs(jobs_count) {}

    /** Worker count; 0 = NUPEA_BENCH_JOBS, else the core count. */
    int jobs = 0;
    /** Run every point with stall attribution and print per-point
     *  attribution tables after the sweep. */
    bool stallReport = false;
    /** When non-empty, write one Chrome trace_event JSON per point
     *  into this directory (implies stall attribution, so the traces
     *  carry stall intervals). */
    std::string traceDir;
    /** Run the static verifier on every compilation (`--verify`, the
     *  default; `--no-verify` clears it). */
    bool verify = true;
    /** Batch up to this many consecutive same-image, mutually
     *  batchable points (LaneMachine::batchable) into one lockstep
     *  LaneMachine per task; 1 runs every point on its own scalar
     *  Machine. Simulated results are bit-identical either way. */
    int lanes = 1;
    /** Statically score every point with the performance model
     *  (analysis/perf_model.h) and cycle-simulate only the best
     *  `prune` fraction, Pareto-selected on (predicted cycles,
     *  predicted energy); skipped points carry the model's
     *  predictions instead of measurements (PointResult::pruned).
     *  1.0 (the default) simulates everything. */
    double prune = 1.0;

    /** Any observability feature requested? */
    bool
    observing() const
    {
        return stallReport || !traceDir.empty();
    }
};

/** NUPEA_BENCH_JOBS if set and positive, else hardware concurrency. */
int defaultJobs();

/**
 * Parse --jobs N / --jobs=N / -j N / -jN, --lanes N / --lanes=N,
 * --prune FRAC / --prune=FRAC (a fraction in (0, 1]; <= 0 or > 1 is
 * fatal), --stall-report, --trace-out DIR / --trace-out=DIR, and
 * --verify / --no-verify.
 * --help / -h prints the usage message and exits 0. Any other
 * `-`/`--` argument is fatal() with the usage message — a typo like
 * `--job 8` must not silently run serial. Benches with their own
 * flags list them in `extraValueOpts` (options that consume one
 * value, accepted as `--opt VALUE` or `--opt=VALUE`) and
 * `extraFlags` (bare switches); both are skipped here and shown in
 * the usage text.
 */
SweepOptions
parseSweepArgs(int argc, char **argv,
               const std::vector<std::string> &extraValueOpts = {},
               const std::vector<std::string> &extraFlags = {});

/**
 * A small work-stealing thread pool with sharded queues (see the
 * file comment for the scheduling shape). With jobs == 1 the batch
 * runs inline on the calling thread (the exact serial path).
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = SweepOptions{});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    int jobs() const { return jobs_; }
    const SweepOptions &options() const { return options_; }

    /**
     * The executing pool's worker index for the current thread:
     * 0..jobs-1 on pool threads (and on the calling thread while an
     * inline jobs=1 batch runs), -1 elsewhere. Tasks use it to index
     * per-worker scratch state — e.g. runSweep's BackingStore
     * arenas — without any locking.
     */
    static int currentWorker();

    /**
     * Execute every task to completion (blocks). If any task threw,
     * the batch is poisoned — tasks not yet started are skipped —
     * and the first-submitted recorded exception is re-thrown here
     * after the whole batch has drained.
     */
    void runAll(std::vector<std::function<void()>> tasks);

    /** Tasks skipped by fail-fast poisoning in the last batch. */
    std::size_t
    skippedLast() const
    {
        return skipped_.load(std::memory_order_relaxed);
    }

    /**
     * Parallel map with submission-ordered results. T must be
     * default-constructible and move-assignable.
     */
    template <typename T>
    std::vector<T>
    map(std::vector<std::function<T()>> tasks)
    {
        std::vector<T> out(tasks.size());
        std::vector<std::function<void()>> thunks;
        thunks.reserve(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i)
            thunks.push_back([&out, &tasks, i] { out[i] = tasks[i](); });
        runAll(std::move(thunks));
        return out;
    }

  private:
    /** A contiguous [begin, end) slice of the current batch. */
    struct Chunk
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** One worker's queue; own mutex so takes never serialize the
     *  whole pool. Heap-allocated (and padded) per worker so shards
     *  sit on distinct cache lines. */
    struct alignas(64) Shard
    {
        std::mutex mu;
        std::deque<Chunk> chunks;
    };

    void workerLoop(std::size_t wid);
    /** Pop own front, else steal a peer's back; retries while any
     *  peer lock is contended so no queued chunk is stranded. */
    bool takeChunk(std::size_t wid, Chunk &out);
    void runChunk(const Chunk &chunk);
    /** Run one task, recording errors and honoring poisoning. */
    void executeTask(std::size_t task);
    void runBatchInline();
    void rethrowFirstError();

    SweepOptions options_;
    int jobs_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    /** Current batch; written by runAll before chunks are dealt, so
     *  every worker access is ordered by a shard mutex acquire. */
    std::vector<std::function<void()>> batch_;
    std::vector<std::exception_ptr> errors_; ///< slot per task

    std::atomic<std::size_t> remaining_{0}; ///< not yet run/skipped
    std::atomic<bool> poisoned_{false};     ///< a task threw
    std::atomic<std::size_t> skipped_{0};   ///< fail-fast skips

    std::mutex mu_; ///< parks idle workers; guards epoch_/shutdown_
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::uint64_t epoch_ = 0; ///< bumped per runAll batch
    bool shutdown_ = false;
};

/** One sweep point: run `cw` under `config` on a fresh machine. */
struct RunSpec
{
    const CompiledWorkload *cw = nullptr;
    MachineConfig config;
    /** For error messages and per-point timing records. */
    std::string label;
};

/** One executed point, in submission order. */
struct PointResult
{
    BenchRun run;
    /** Host wall-clock of the simulated run only (store acquisition
     *  and page prefaulting are excluded); for a lane-batched point,
     *  the batch wall divided evenly over its lanes. */
    double wallSeconds = 0.0;
    std::string label;
    /** The point was dropped by --prune: `run` holds the static
     *  model's predictions (cycles, energy, avg latency, functional
     *  load/store/firing counts), not measurements, and verified is
     *  false. */
    bool pruned = false;
};

/** A drained sweep plus harness-throughput accounting. */
struct SweepResult
{
    std::vector<PointResult> points; ///< submission order
    double wallSeconds = 0.0;        ///< batch wall-clock
    int jobs = 1;
    /** Points dropped by --prune (their slots carry predictions). */
    std::size_t prunedPoints = 0;

    /** Sum of per-point wall times (the serial-equivalent cost). */
    double pointSeconds() const;
};

/**
 * Execute every spec through the runner; results in spec order. The
 * compiled image is shared read-only across workers: each worker
 * reuses one pre-faulted BackingStore arena, reset to the point's
 * image before every run (see BackingStore::resetTo), instead of
 * mapping a fresh store per point. When the runner's options request
 * observability, every point runs with stall attribution (and, with
 * a trace directory, writes `<dir>/<label>.trace.json`, suffixing
 * the point index when two labels sanitize to the same file stem);
 * per-point stall reports print after the sweep drains, in
 * submission order. If the sweep throws, partially-written trace
 * files are removed rather than left as truncated, invalid JSON.
 *
 * With options().lanes > 1, consecutive specs that share a compiled
 * workload and mutually batchable configs (LaneMachine::batchable:
 * same arena geometry and energy table; memory model, clock divider
 * and observability may differ) run as lanes of one LaneMachine per
 * task, sharing dispatch tables. Lane batching
 * composes with --jobs (each batch is one pool task) and keeps
 * per-lane results bit-identical to the scalar path (enforced by
 * test_machine_lanes); points that cannot batch fall back to a
 * scalar Machine.
 *
 * With options().prune < 1, every point is first scored by the
 * static performance model (one interpreter profile per distinct
 * compiled workload, then pure arithmetic per point) and only the
 * best max(1, floor(prune * n)) points — whole Pareto fronts on
 * (predicted system cycles, predicted total energy), ties broken by
 * predicted cycles then submission order — are cycle-simulated.
 * Dropped points keep their submission-order slots with the model's
 * predictions and pruned = true; trace files are written only for
 * simulated points, stall reports skip pruned points, and the count
 * of dropped points is logged and recorded in prunedPoints. If any
 * workload's profile is unclean (interpreter livelock), pruning is
 * disabled for the whole sweep rather than scoring on garbage.
 * Composes with --jobs and --lanes.
 */
SweepResult runSweep(SweepRunner &runner,
                     const std::vector<RunSpec> &specs);

/** One workload compilation request. */
struct CompileSpec
{
    std::string name;
    Topology topo;
    CompileOptions options;
};

/**
 * Compile every spec through the runner (PnR dominates harness time
 * for the topology studies); results in spec order.
 */
std::vector<CompiledWorkload>
compileAll(SweepRunner &runner, const std::vector<CompileSpec> &specs);

/** Print the standard "[sweep] N points ... " harness footer. */
void printSweepFooter(const SweepResult &sweep);

} // namespace bench
} // namespace nupea

#endif // NUPEA_BENCH_SWEEP_RUNNER_H
