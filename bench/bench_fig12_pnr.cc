/**
 * @file
 * Reproduces Fig. 12: speedup on Monaco attained by the NUPEA-aware
 * PnR heuristics — Only-Domain-Aware and effcc (domain + criticality
 * aware) over Domain-Unaware placement. The paper reports avg 16%
 * for domain awareness alone and avg 25% for the full effcc
 * heuristic.
 */

#include <cstdio>

#include "bench/bench_util.h"

int
main()
{
    using namespace nupea;
    using namespace nupea::bench;

    Topology topo = Topology::makeMonaco(12, 12);

    std::printf("Fig. 12: speedup over Domain-Unaware PnR on Monaco "
                "(higher = better)\n\n");
    printRow("app", {"DomUnaware", "OnlyDomain", "effcc"});

    std::vector<double> domain_s, effcc_s;
    for (const auto &name : workloadNames()) {
        auto run_mode = [&](PlaceMode mode) {
            CompileOptions copts;
            copts.mode = mode;
            CompiledWorkload cw = compileWorkload(name, topo, copts);
            BenchRun r =
                runCompiled(cw, primaryConfig(MemModel::Monaco, 0));
            if (!r.verified)
                warn(name, " failed verification under ",
                     placeModeName(mode));
            return static_cast<double>(r.systemCycles);
        };

        double unaware = run_mode(PlaceMode::DomainUnaware);
        double domain = run_mode(PlaceMode::DomainAware);
        double effcc = run_mode(PlaceMode::CriticalityAware);

        domain_s.push_back(unaware / domain);
        effcc_s.push_back(unaware / effcc);
        printRow(name, {fmt(1.0), fmt(unaware / domain),
                        fmt(unaware / effcc)});
    }

    std::printf("\n");
    printRow("geomean",
             {fmt(1.0), fmt(geomean(domain_s)), fmt(geomean(effcc_s))});
    std::printf("\npaper: Only-Domain-Aware ~1.16x, effcc ~1.25x over "
                "Domain-Unaware\n");
    return 0;
}
