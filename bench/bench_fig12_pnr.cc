/**
 * @file
 * Reproduces Fig. 12: speedup on Monaco attained by the NUPEA-aware
 * PnR heuristics — Only-Domain-Aware and effcc (domain + criticality
 * aware) over Domain-Unaware placement. The paper reports avg 16%
 * for domain awareness alone and avg 25% for the full effcc
 * heuristic.
 *
 * Each (workload, PnR mode) compiles exactly once; compilations and
 * sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS) with
 * results identical for any job count.
 */

#include <cstdio>

#include "bench/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);

    const PlaceMode kModes[] = {PlaceMode::DomainUnaware,
                                PlaceMode::DomainAware,
                                PlaceMode::CriticalityAware};

    // One compilation per (workload, mode), each exactly once.
    std::vector<CompileSpec> cspecs;
    for (const auto &name : workloadNames()) {
        for (PlaceMode mode : kModes) {
            CompileOptions copts;
            copts.mode = mode;
            cspecs.push_back({name, topo, copts});
        }
    }
    std::vector<CompiledWorkload> compiled = compileAll(runner, cspecs);

    std::vector<RunSpec> rspecs;
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        rspecs.push_back(
            {&compiled[i], primaryConfig(MemModel::Monaco, 0),
             formatMessage(cspecs[i].name, "/",
                           placeModeName(cspecs[i].options.mode))});
    }
    SweepResult sweep = runSweep(runner, rspecs);

    std::printf("Fig. 12: speedup over Domain-Unaware PnR on Monaco "
                "(higher = better)\n\n");
    printRow("app", {"DomUnaware", "OnlyDomain", "effcc"});

    std::vector<double> domain_s, effcc_s;
    for (std::size_t i = 0; i < workloadNames().size(); ++i) {
        const std::string &name = workloadNames()[i];
        double cycles[3];
        for (std::size_t m = 0; m < 3; ++m) {
            const PointResult &p = sweep.points[3 * i + m];
            if (!p.run.verified)
                warn(name, " failed verification under ",
                     placeModeName(kModes[m]));
            cycles[m] = static_cast<double>(p.run.systemCycles);
        }
        double unaware = cycles[0], domain = cycles[1],
               effcc = cycles[2];

        domain_s.push_back(unaware / domain);
        effcc_s.push_back(unaware / effcc);
        printRow(name, {fmt(1.0), fmt(unaware / domain),
                        fmt(unaware / effcc)});
    }

    std::printf("\n");
    printRow("geomean",
             {fmt(1.0), fmt(geomean(domain_s)), fmt(geomean(effcc_s))});
    std::printf("\npaper: Only-Domain-Aware ~1.16x, effcc ~1.25x over "
                "Domain-Unaware\n");
    printSweepFooter(sweep);
    return 0;
}
