/**
 * @file
 * Reproduces Fig. 12: speedup on Monaco attained by the NUPEA-aware
 * PnR heuristics — Only-Domain-Aware and effcc (domain + criticality
 * aware) over Domain-Unaware placement. The paper reports avg 16%
 * for domain awareness alone and avg 25% for the full effcc
 * heuristic.
 *
 * Each (workload, PnR mode) compiles exactly once; compilations and
 * sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS) with
 * results identical for any job count.
 *
 * With --pnr-chains K (K > 1) an extra section compares the
 * portfolio placer against the single-seed placer on the effcc
 * basket: per-workload placement cost, per-chain anneal stats, and
 * the compile wall-clock ratio. The figure table itself always uses
 * the single-seed placer so its numbers are comparable across runs.
 */

#include <chrono>
#include <cstdio>

#include "bench/sweep_runner.h"
#include "compiler/report.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);

    const PlaceMode kModes[] = {PlaceMode::DomainUnaware,
                                PlaceMode::DomainAware,
                                PlaceMode::CriticalityAware};

    // One compilation per (workload, mode), each exactly once.
    std::vector<CompileSpec> cspecs;
    for (const auto &name : workloadNames()) {
        for (PlaceMode mode : kModes) {
            CompileOptions copts;
            copts.mode = mode;
            // Pin the single-seed placer: the figure table must be
            // comparable across runs regardless of --pnr-chains (the
            // portfolio section below uses the CLI value).
            copts.pnrChains = 1;
            cspecs.push_back({name, topo, copts});
        }
    }
    std::vector<CompiledWorkload> compiled = compileAll(runner, cspecs);

    std::vector<RunSpec> rspecs;
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        rspecs.push_back(
            {&compiled[i], primaryConfig(MemModel::Monaco, 0),
             formatMessage(cspecs[i].name, "/",
                           placeModeName(cspecs[i].options.mode))});
    }
    SweepResult sweep = runSweep(runner, rspecs);

    std::printf("Fig. 12: speedup over Domain-Unaware PnR on Monaco "
                "(higher = better)\n\n");
    printRow("app", {"DomUnaware", "OnlyDomain", "effcc"});

    std::vector<double> domain_s, effcc_s;
    for (std::size_t i = 0; i < workloadNames().size(); ++i) {
        const std::string &name = workloadNames()[i];
        double cycles[3];
        for (std::size_t m = 0; m < 3; ++m) {
            const PointResult &p = sweep.points[3 * i + m];
            if (!p.run.verified)
                warn(name, " failed verification under ",
                     placeModeName(kModes[m]));
            cycles[m] = static_cast<double>(p.run.systemCycles);
        }
        double unaware = cycles[0], domain = cycles[1],
               effcc = cycles[2];

        domain_s.push_back(unaware / domain);
        effcc_s.push_back(unaware / effcc);
        printRow(name, {fmt(1.0), fmt(unaware / domain),
                        fmt(unaware / effcc)});
    }

    std::printf("\n");
    printRow("geomean",
             {fmt(1.0), fmt(geomean(domain_s)), fmt(geomean(effcc_s))});
    std::printf("\npaper: Only-Domain-Aware ~1.16x, effcc ~1.25x over "
                "Domain-Unaware\n");
    printSweepFooter(sweep);

    // Portfolio section: --pnr-chains K compiles the effcc basket
    // twice — single-seed and K-chain portfolio — and compares
    // placement cost and compile wall-clock. The chosen placements
    // are identical for any --jobs; only wall-clock varies.
    if (runner.options().pnrChains > 1) {
        int chains = runner.options().pnrChains;
        auto timedCompile = [&](int pin_chains) {
            std::vector<CompileSpec> pspecs;
            for (const auto &name : workloadNames()) {
                CompileOptions copts;
                copts.mode = PlaceMode::CriticalityAware;
                // 0 inherits the runner's --pnr-chains; an explicit
                // 1 pins the single-seed placer.
                copts.pnrChains = pin_chains;
                pspecs.push_back({name, topo, copts});
            }
            auto start = std::chrono::steady_clock::now();
            std::vector<CompiledWorkload> out =
                compileAll(runner, pspecs);
            double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
            return std::make_pair(std::move(out), wall);
        };

        auto [single, single_wall] = timedCompile(1);
        auto [portfolio, portfolio_wall] = timedCompile(0);

        std::printf("\nPortfolio placer: %d chains vs single seed, "
                    "effcc placement cost (lower = better)\n\n",
                    chains);
        printRow("app", {"single", "portfolio", "gain%"});
        double sum_single = 0.0, sum_portfolio = 0.0;
        for (std::size_t i = 0; i < workloadNames().size(); ++i) {
            double s = single[i].pnr.placerStats.winnerCost;
            double p = portfolio[i].pnr.placerStats.winnerCost;
            sum_single += s;
            sum_portfolio += p;
            printRow(workloadNames()[i],
                     {fmt(s), fmt(p),
                      fmt(s > 0.0 ? (s - p) / s * 100.0 : 0.0)});
        }
        std::printf("\n");
        printRow("basket sum",
                 {fmt(sum_single), fmt(sum_portfolio),
                  fmt(sum_single > 0.0
                          ? (sum_single - sum_portfolio) / sum_single *
                                100.0
                          : 0.0)});
        std::printf("\n[portfolio] basket cost %s single seed; "
                    "compile wall %.2fs vs %.2fs single (%.2fx)\n",
                    sum_portfolio <= sum_single ? "<=" : "ABOVE",
                    portfolio_wall, single_wall,
                    single_wall > 0.0 ? portfolio_wall / single_wall
                                      : 0.0);
        for (std::size_t i = 0; i < workloadNames().size(); ++i) {
            std::printf("\n%s:\n%s",
                        workloadNames()[i].c_str(),
                        portfolioSummary(portfolio[i].pnr.placerStats)
                            .c_str());
        }
    }
    return 0;
}
