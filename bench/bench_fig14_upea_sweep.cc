/**
 * @file
 * Reproduces Fig. 14: NUPEA (Monaco) versus a sweep of UPEA SDAs
 * with uniform PE-access latencies from 0 (ideal) to 4 cycles,
 * normalized to Monaco. The paper reports near-linear degradation
 * with UPEA delay: Monaco ~3% faster than UPEA1, 28% than UPEA2,
 * 55% than UPEA3, 82% than UPEA4.
 *
 * Sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS);
 * results are identical for any job count.
 */

#include <cstdio>

#include "bench/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);
    constexpr int kMaxLatency = 4;
    constexpr std::size_t kPerApp = kMaxLatency + 2; // monaco + 5 upea

    std::vector<CompileSpec> cspecs;
    for (const auto &name : workloadNames())
        cspecs.push_back({name, topo, CompileOptions{}});
    std::vector<CompiledWorkload> compiled = compileAll(runner, cspecs);

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        const std::string &app = cw.workload->name();
        rspecs.push_back(
            {&cw, primaryConfig(MemModel::Monaco, 0), app + "/monaco"});
        for (int n = 0; n <= kMaxLatency; ++n) {
            rspecs.push_back({&cw, primaryConfig(MemModel::Upea, n),
                              formatMessage(app, "/upea", n)});
        }
    }
    SweepResult sweep = runSweep(runner, rspecs);

    std::printf("Fig. 14: UPEA latency sweep, execution time "
                "normalized to Monaco\n\n");
    printRow("app", {"UPEA0", "UPEA1", "UPEA2", "UPEA3", "UPEA4",
                     "Monaco"});

    std::vector<std::vector<double>> ratios(kMaxLatency + 1);
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        auto m = static_cast<double>(
            sweep.points[kPerApp * i].run.systemCycles);

        std::vector<std::string> cells;
        for (int n = 0; n <= kMaxLatency; ++n) {
            const BenchRun &r =
                sweep.points[kPerApp * i + 1 +
                             static_cast<std::size_t>(n)]
                    .run;
            double ratio = static_cast<double>(r.systemCycles) / m;
            ratios[static_cast<std::size_t>(n)].push_back(ratio);
            cells.push_back(fmt(ratio));
        }
        cells.push_back(fmt(1.0));
        printRow(compiled[i].workload->name(), cells);
    }

    std::printf("\n");
    std::vector<std::string> means;
    for (int n = 0; n <= kMaxLatency; ++n)
        means.push_back(fmt(geomean(ratios[static_cast<std::size_t>(n)])));
    means.push_back(fmt(1.0));
    printRow("geomean", means);
    std::printf("\npaper: UPEA1 ~1.03x, UPEA2 ~1.28x, UPEA3 ~1.55x, "
                "UPEA4 ~1.82x Monaco\n");
    printSweepFooter(sweep);
    return 0;
}
