/**
 * @file
 * Reproduces Fig. 14: NUPEA (Monaco) versus a sweep of UPEA SDAs
 * with uniform PE-access latencies from 0 (ideal) to 4 cycles,
 * normalized to Monaco. The paper reports near-linear degradation
 * with UPEA delay: Monaco ~3% faster than UPEA1, 28% than UPEA2,
 * 55% than UPEA3, 82% than UPEA4.
 */

#include <cstdio>

#include "bench/bench_util.h"

int
main()
{
    using namespace nupea;
    using namespace nupea::bench;

    Topology topo = Topology::makeMonaco(12, 12);
    constexpr int kMaxLatency = 4;

    std::printf("Fig. 14: UPEA latency sweep, execution time "
                "normalized to Monaco\n\n");
    printRow("app", {"UPEA0", "UPEA1", "UPEA2", "UPEA3", "UPEA4",
                     "Monaco"});

    std::vector<std::vector<double>> ratios(kMaxLatency + 1);
    for (const auto &name : workloadNames()) {
        CompiledWorkload cw = compileWorkload(name, topo,
                                              CompileOptions{});
        BenchRun monaco =
            runCompiled(cw, primaryConfig(MemModel::Monaco, 0));
        auto m = static_cast<double>(monaco.systemCycles);

        std::vector<std::string> cells;
        for (int n = 0; n <= kMaxLatency; ++n) {
            BenchRun r =
                runCompiled(cw, primaryConfig(MemModel::Upea, n));
            double ratio = static_cast<double>(r.systemCycles) / m;
            ratios[static_cast<std::size_t>(n)].push_back(ratio);
            cells.push_back(fmt(ratio));
        }
        cells.push_back(fmt(1.0));
        printRow(name, cells);
    }

    std::printf("\n");
    std::vector<std::string> means;
    for (int n = 0; n <= kMaxLatency; ++n)
        means.push_back(fmt(geomean(ratios[static_cast<std::size_t>(n)])));
    means.push_back(fmt(1.0));
    printRow("geomean", means);
    std::printf("\npaper: UPEA1 ~1.03x, UPEA2 ~1.28x, UPEA3 ~1.55x, "
                "UPEA4 ~1.82x Monaco\n");
    return 0;
}
