/**
 * @file
 * Extension: data-movement energy comparison. The paper evaluates
 * performance; its authors' broader agenda is energy-minimal
 * computing, and NUPEA's shorter fabric-memory paths for hot loads
 * also cut data-movement energy. This bench reports per-workload
 * energy (abstract units, split compute/network/memory) and
 * energy-delay product for Monaco versus the practical UPEA2 SDA.
 *
 * Sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS);
 * results are identical for any job count.
 */

#include <cstdio>

#include "bench/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);

    std::vector<CompileSpec> cspecs;
    for (const auto &name : workloadNames())
        cspecs.push_back({name, topo, CompileOptions{}});
    std::vector<CompiledWorkload> compiled = compileAll(runner, cspecs);

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        const std::string &app = cw.workload->name();
        rspecs.push_back(
            {&cw, primaryConfig(MemModel::Monaco, 0), app + "/monaco"});
        rspecs.push_back(
            {&cw, primaryConfig(MemModel::Upea, 2), app + "/upea2"});
    }
    SweepResult sweep = runSweep(runner, rspecs);

    std::printf("Extension: data-movement energy, Monaco vs UPEA2 "
                "(abstract units)\n\n");
    printRow("app",
             {"E(Monaco)", "E(UPEA2)", "E-ratio", "EDP-ratio"}, 10, 12);

    std::vector<double> e_ratios, edp_ratios;
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        const BenchRun &monaco = sweep.points[2 * i].run;
        const BenchRun &upea = sweep.points[2 * i + 1].run;
        auto monaco_cycles = static_cast<double>(monaco.systemCycles);
        auto upea_cycles = static_cast<double>(upea.systemCycles);

        double e_ratio = upea.energy.total() / monaco.energy.total();
        double edp_ratio = (upea.energy.total() * upea_cycles) /
                           (monaco.energy.total() * monaco_cycles);
        e_ratios.push_back(e_ratio);
        edp_ratios.push_back(edp_ratio);
        printRow(compiled[i].workload->name(),
                 {fmt(monaco.energy.total(), 0),
                  fmt(upea.energy.total(), 0), fmt(e_ratio),
                  fmt(edp_ratio)},
                 10, 12);
    }

    std::printf("\n");
    printRow("geomean",
             {"", "", fmt(geomean(e_ratios)), fmt(geomean(edp_ratios))},
             10, 12);
    std::printf("\n(E-ratio > 1: UPEA spends more energy; EDP folds "
                "in the runtime advantage)\n");
    printSweepFooter(sweep);
    return 0;
}
