/**
 * @file
 * Extension: data-movement energy comparison. The paper evaluates
 * performance; its authors' broader agenda is energy-minimal
 * computing, and NUPEA's shorter fabric-memory paths for hot loads
 * also cut data-movement energy. This bench reports per-workload
 * energy (abstract units, split compute/network/memory) and
 * energy-delay product for Monaco versus the practical UPEA2 SDA.
 */

#include <cstdio>

#include "bench/bench_util.h"

int
main()
{
    using namespace nupea;
    using namespace nupea::bench;

    Topology topo = Topology::makeMonaco(12, 12);

    std::printf("Extension: data-movement energy, Monaco vs UPEA2 "
                "(abstract units)\n\n");
    printRow("app",
             {"E(Monaco)", "E(UPEA2)", "E-ratio", "EDP-ratio"}, 10, 12);

    std::vector<double> e_ratios, edp_ratios;
    for (const auto &name : workloadNames()) {
        CompiledWorkload cw = compileWorkload(name, topo,
                                              CompileOptions{});

        auto run_energy = [&](MemModel model, int lat, double &cycles) {
            BackingStore store(MemSysConfig{}.memBytes);
            cw.workload->init(store);
            MachineConfig cfg = primaryConfig(model, lat);
            Machine machine(cw.graph, cw.pnr.placement, cw.topo, cfg,
                            store);
            RunResult r = machine.run();
            cycles = static_cast<double>(r.systemCycles);
            return r.energy;
        };

        double monaco_cycles = 0, upea_cycles = 0;
        EnergyBreakdown monaco =
            run_energy(MemModel::Monaco, 0, monaco_cycles);
        EnergyBreakdown upea =
            run_energy(MemModel::Upea, 2, upea_cycles);

        double e_ratio = upea.total() / monaco.total();
        double edp_ratio = (upea.total() * upea_cycles) /
                           (monaco.total() * monaco_cycles);
        e_ratios.push_back(e_ratio);
        edp_ratios.push_back(edp_ratio);
        printRow(name, {fmt(monaco.total(), 0), fmt(upea.total(), 0),
                        fmt(e_ratio), fmt(edp_ratio)},
                 10, 12);
    }

    std::printf("\n");
    printRow("geomean",
             {"", "", fmt(geomean(e_ratios)), fmt(geomean(edp_ratios))},
             10, 12);
    std::printf("\n(E-ratio > 1: UPEA spends more energy; EDP folds "
                "in the runtime advantage)\n");
    return 0;
}
