/**
 * @file
 * Reproduces Fig. 6c: spmspv on a UPEA fabric with 0-cycle latency
 * (idealized), a practical UPEA fabric with 2-cycle latency, and the
 * NUPEA fabric (Monaco). The paper reports UPEA2 ~32% slower than
 * UPEA0 and NUPEA within ~1% of UPEA0.
 *
 * Sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS);
 * results are identical for any job count.
 */

#include <cstdio>

#include "bench/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);
    CompiledWorkload cw =
        compileWorkload("spmspv", topo, CompileOptions{});

    SweepResult sweep = runSweep(
        runner,
        {{&cw, primaryConfig(MemModel::Upea, 0), "spmspv/upea0"},
         {&cw, primaryConfig(MemModel::Upea, 2), "spmspv/upea2"},
         {&cw, primaryConfig(MemModel::Monaco, 0), "spmspv/monaco"}});
    const BenchRun &upea0 = sweep.points[0].run;
    const BenchRun &upea2 = sweep.points[1].run;
    const BenchRun &nupea = sweep.points[2].run;

    std::printf("Fig. 6c: spmspv execution time, normalized to UPEA0 "
                "(idealized)\n");
    std::printf("(parallelism %d, %zu-node DFG, all runs verified: "
                "%s)\n\n",
                cw.parallelism, cw.graph.numNodes(),
                (upea0.verified && upea2.verified && nupea.verified)
                    ? "yes"
                    : "NO");

    auto base = static_cast<double>(upea0.systemCycles);
    printRow("config", {"sys-cycles", "normalized"}, 10, 12);
    printRow("UPEA0", {std::to_string(upea0.systemCycles), fmt(1.0, 3)});
    printRow("UPEA2",
             {std::to_string(upea2.systemCycles),
              fmt(static_cast<double>(upea2.systemCycles) / base, 3)});
    printRow("NUPEA",
             {std::to_string(nupea.systemCycles),
              fmt(static_cast<double>(nupea.systemCycles) / base, 3)});

    std::printf("\npaper: UPEA2 ~1.32x UPEA0; NUPEA ~1.01x UPEA0\n");
    printSweepFooter(sweep);
    return 0;
}
