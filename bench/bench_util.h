/**
 * @file
 * Shared experiment harness for the figure-reproduction benches:
 * compile a workload once per (topology, PnR mode), then run it
 * against any number of machine configurations on fresh memory
 * images, verifying functional correctness after every run.
 */

#ifndef NUPEA_BENCH_BENCH_UTIL_H
#define NUPEA_BENCH_BENCH_UTIL_H

#include <memory>
#include <string>
#include <vector>

#include "compiler/pnr.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace nupea
{
namespace bench
{

/**
 * A workload compiled for one fabric with one PnR mode.
 *
 * Immutable after compileWorkload(): runs clone `image` rather than
 * re-running init(), and verify() is const — so one CompiledWorkload
 * is safe to share across SweepRunner threads.
 */
struct CompiledWorkload
{
    std::unique_ptr<Workload> workload;
    Topology topo;
    Graph graph;
    PnrResult pnr;
    int parallelism = 1;
    /** Initialized memory image, captured once at compile time. */
    BackingStore image{0};
};

/** Compilation knobs for the harness. */
struct CompileOptions
{
    PlaceMode mode = PlaceMode::CriticalityAware;
    std::uint64_t seed = 1;
    /** Annealing effort (moves per node). */
    int saIterationsPerNode = 80;
    /**
     * Parallelism policy: >0 fixes the degree; 0 uses the workload's
     * hand-tuned preference (falling back to the automatic ramp);
     * -1 forces the automatic ramp (paper Sec. 6).
     */
    int parallelism = 0;
    /**
     * Run the static verifier (verify/verify.h) over the graph and
     * PnR output after compilation: fatal() on any error diagnostic,
     * warn() on warnings. On by default; `--no-verify` in the sweep
     * harness clears it.
     */
    bool verify = true;
    /**
     * After compiling, run the static performance model and report
     * placement hazards (analysis/hazards.h: perf.recurrence-bound,
     * perf.bank-hotspot, perf.underutilized-column) as warn()
     * messages. Purely analytical — no simulation. Off by default.
     */
    bool perfHazards = false;
    /**
     * Portfolio-placer chains (compiler/placement.h). 0 is a
     * sentinel: "inherit the sweep runner's --pnr-chains" (resolved
     * by compileAll(); direct compileWorkload() callers get the
     * single-seed placer). An explicit 1 pins the single-seed placer
     * regardless of the CLI; > 1 runs that many chains.
     */
    int pnrChains = 0;
    /** Moves per graph node between portfolio sync epochs; 0 uses
     *  the placer's default. */
    int pnrEpoch = 0;
    /** Pool the portfolio placer fans its chains out on; null runs
     *  chains serially. Borrowed; set by compileAll(). */
    TaskPool *pnrPool = nullptr;
    /** Optional placer chain-trace hook (TraceSink::onPlacerEpoch).
     *  Borrowed. */
    TraceSink *placerTrace = nullptr;
};

/**
 * Compile `name` for `topo`. Uses the workload's preferred
 * parallelism (backing off if PnR fails) or the automatic ramp.
 * fatal() if nothing fits.
 */
CompiledWorkload compileWorkload(const std::string &name,
                                 const Topology &topo,
                                 const CompileOptions &options);

/** One timed, verified run. */
struct BenchRun
{
    Cycle fabricCycles = 0;
    Cycle systemCycles = 0;
    bool verified = false;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t firings = 0;
    double avgMemLatency = 0.0; ///< system cycles, request to response
    EnergyBreakdown energy;     ///< compute/network/memory split
    StatSet stats;              ///< full machine stat set
    /** Per-node stall attribution (empty unless
     *  MachineConfig::stallAttribution was set for the run). */
    std::vector<NodeStallCounters> nodeStalls;
    /** Per-node memory latency distributions (same gating). */
    std::vector<Distribution> nodeMemLatency;
};

/**
 * Run a compiled workload under `config` on a fresh clone of the
 * compiled memory image (never touching the workload object, so
 * concurrent runs of one CompiledWorkload are safe). fatal() on
 * watchdog expiry or unclean termination; `verified` records whether
 * the memory image matched the host reference.
 */
BenchRun runCompiled(const CompiledWorkload &cw,
                     MachineConfig config = MachineConfig{});

/**
 * Same, but on a caller-provided store (recycled across points by
 * the sweep runner's per-worker arenas): the store is resetTo() the
 * compiled image first, which restores an exact fresh-clone state as
 * long as every write since the last reset went through storeWord()
 * — true of the Machine, whose only store writes are MemorySystem
 * word stores. Simulated results are bit-identical to the fresh-
 * store overload (enforced by test_golden_stats).
 */
BenchRun runCompiled(const CompiledWorkload &cw, MachineConfig config,
                     BackingStore &store);

/**
 * Run a batch of machine configurations over one compiled workload in
 * a single LaneMachine (see sim/machine_lanes.h): the dispatch tables
 * are built once and every lane steps in lockstep, with per-lane
 * results bit-identical to running each config through runCompiled.
 * `configs` must be mutually batchable (LaneMachine::batchable);
 * `stores` supplies one caller-owned store per config, each resetTo()
 * the compiled image first, exactly like the recycled-store
 * runCompiled overload. fatal() on any lane's watchdog expiry or
 * unclean termination.
 */
std::vector<BenchRun>
runCompiledLanes(const CompiledWorkload &cw,
                 const std::vector<MachineConfig> &configs,
                 const std::vector<BackingStore *> &stores);

/**
 * A worker-private reusable store bank (memory/backing_store.h).
 * acquire() allocates (and pre-faults the image span of) a store on
 * first use or on a capacity change; afterwards the same mapping is
 * recycled, so a sweep pays one mmap per worker-lane instead of one
 * mmap/munmap per point — the kernel-side churn that made the jobs=8
 * sweep slower than serial on tiny points. Scalar points use lane 0;
 * batched points take one lane per machine configuration.
 */
class StoreArena
{
  public:
    /** A store of exactly `bytes` capacity, pages for the first
     *  `prefaultBytes` already faulted in. Contents unspecified;
     *  callers reset it per run (see runCompiled above). */
    BackingStore &
    acquire(std::size_t bytes, std::size_t prefaultBytes)
    {
        return bank_.acquire(0, bytes, prefaultBytes);
    }

    /** Same, for lane `lane` of a batched point. */
    BackingStore &
    acquireLane(std::size_t lane, std::size_t bytes,
                std::size_t prefaultBytes)
    {
        return bank_.acquire(lane, bytes, prefaultBytes);
    }

  private:
    StoreBank bank_;
};

/**
 * Print a stall-attribution table for one run (requires the run to
 * have been executed with stallAttribution): per-FU-class cycles by
 * StallReason, the busiest memory nodes, and the criticality-rank
 * cross-validation against measured per-load latency.
 */
void printStallReport(const CompiledWorkload &cw,
                      const std::string &label, const BenchRun &run);

/** Machine config for the paper's primary comparisons (divider 2). */
MachineConfig primaryConfig(MemModel model, int upea_latency);

/** Geometric mean of a list of ratios. */
double geomean(const std::vector<double> &values);

/** Print a fixed-width table row of label + values. */
void printRow(const std::string &label,
              const std::vector<std::string> &cells, int label_width = 10,
              int cell_width = 12);

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

} // namespace bench
} // namespace nupea

#endif // NUPEA_BENCH_BENCH_UTIL_H
