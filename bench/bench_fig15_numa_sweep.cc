/**
 * @file
 * Reproduces Fig. 15: NUPEA (Monaco) versus a sweep of UPEA SDAs
 * with NUMA memory, remote-access latencies 0 (ideal) to 4 cycles,
 * normalized to Monaco. The paper reports NUMA recovers some of
 * UPEA's loss but still degrades near-linearly: Monaco within 2% of
 * NUMA-UPEA1, 20% better than NUMA-UPEA2, 44% than NUMA-UPEA3, 68%
 * than NUMA-UPEA4.
 */

#include <cstdio>

#include "bench/bench_util.h"

int
main()
{
    using namespace nupea;
    using namespace nupea::bench;

    Topology topo = Topology::makeMonaco(12, 12);
    constexpr int kMaxLatency = 4;

    std::printf("Fig. 15: NUMA-UPEA latency sweep, execution time "
                "normalized to Monaco\n\n");
    printRow("app", {"NUMA0", "NUMA1", "NUMA2", "NUMA3", "NUMA4",
                     "Monaco"});

    std::vector<std::vector<double>> ratios(kMaxLatency + 1);
    for (const auto &name : workloadNames()) {
        CompiledWorkload cw = compileWorkload(name, topo,
                                              CompileOptions{});
        BenchRun monaco =
            runCompiled(cw, primaryConfig(MemModel::Monaco, 0));
        auto m = static_cast<double>(monaco.systemCycles);

        std::vector<std::string> cells;
        for (int n = 0; n <= kMaxLatency; ++n) {
            BenchRun r =
                runCompiled(cw, primaryConfig(MemModel::NumaUpea, n));
            double ratio = static_cast<double>(r.systemCycles) / m;
            ratios[static_cast<std::size_t>(n)].push_back(ratio);
            cells.push_back(fmt(ratio));
        }
        cells.push_back(fmt(1.0));
        printRow(name, cells);
    }

    std::printf("\n");
    std::vector<std::string> means;
    for (int n = 0; n <= kMaxLatency; ++n)
        means.push_back(fmt(geomean(ratios[static_cast<std::size_t>(n)])));
    means.push_back(fmt(1.0));
    printRow("geomean", means);
    std::printf("\npaper: NUMA-UPEA1 ~1.02x, NUMA-UPEA2 ~1.20x, "
                "NUMA-UPEA3 ~1.44x, NUMA-UPEA4 ~1.68x Monaco\n");
    return 0;
}
