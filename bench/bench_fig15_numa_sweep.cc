/**
 * @file
 * Reproduces Fig. 15: NUPEA (Monaco) versus a sweep of UPEA SDAs
 * with NUMA memory, remote-access latencies 0 (ideal) to 4 cycles,
 * normalized to Monaco. The paper reports NUMA recovers some of
 * UPEA's loss but still degrades near-linearly: Monaco within 2% of
 * NUMA-UPEA1, 20% better than NUMA-UPEA2, 44% than NUMA-UPEA3, 68%
 * than NUMA-UPEA4.
 *
 * Sweep points run concurrently (--jobs N / NUPEA_BENCH_JOBS);
 * results are identical for any job count.
 */

#include <cstdio>

#include "bench/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));
    Topology topo = Topology::makeMonaco(12, 12);
    constexpr int kMaxLatency = 4;
    constexpr std::size_t kPerApp = kMaxLatency + 2; // monaco + 5 numa

    std::vector<CompileSpec> cspecs;
    for (const auto &name : workloadNames())
        cspecs.push_back({name, topo, CompileOptions{}});
    std::vector<CompiledWorkload> compiled = compileAll(runner, cspecs);

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        const std::string &app = cw.workload->name();
        rspecs.push_back(
            {&cw, primaryConfig(MemModel::Monaco, 0), app + "/monaco"});
        for (int n = 0; n <= kMaxLatency; ++n) {
            rspecs.push_back({&cw, primaryConfig(MemModel::NumaUpea, n),
                              formatMessage(app, "/numa-upea", n)});
        }
    }
    SweepResult sweep = runSweep(runner, rspecs);

    std::printf("Fig. 15: NUMA-UPEA latency sweep, execution time "
                "normalized to Monaco\n\n");
    printRow("app", {"NUMA0", "NUMA1", "NUMA2", "NUMA3", "NUMA4",
                     "Monaco"});

    std::vector<std::vector<double>> ratios(kMaxLatency + 1);
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        auto m = static_cast<double>(
            sweep.points[kPerApp * i].run.systemCycles);

        std::vector<std::string> cells;
        for (int n = 0; n <= kMaxLatency; ++n) {
            const BenchRun &r =
                sweep.points[kPerApp * i + 1 +
                             static_cast<std::size_t>(n)]
                    .run;
            double ratio = static_cast<double>(r.systemCycles) / m;
            ratios[static_cast<std::size_t>(n)].push_back(ratio);
            cells.push_back(fmt(ratio));
        }
        cells.push_back(fmt(1.0));
        printRow(compiled[i].workload->name(), cells);
    }

    std::printf("\n");
    std::vector<std::string> means;
    for (int n = 0; n <= kMaxLatency; ++n)
        means.push_back(fmt(geomean(ratios[static_cast<std::size_t>(n)])));
    means.push_back(fmt(1.0));
    printRow("geomean", means);
    std::printf("\npaper: NUMA-UPEA1 ~1.02x, NUMA-UPEA2 ~1.20x, "
                "NUMA-UPEA3 ~1.44x, NUMA-UPEA4 ~1.68x Monaco\n");
    printSweepFooter(sweep);
    return 0;
}
