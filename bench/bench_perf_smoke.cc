/**
 * @file
 * Harness-throughput smoke bench: compiles a small workload basket,
 * runs the same sweep serially (--jobs 1) and in parallel (--jobs N),
 * checks the two produce bit-identical simulated stats, times an
 * attribution-on serial pass, and writes BENCH_perf.json — per-point
 * and per-workload timings plus serial-vs-parallel sweep wall-clock —
 * so future PRs can see sweep-throughput regressions.
 *
 * Usage: bench_perf_smoke [--jobs N] [--out PATH] [--guard BASELINE]
 *
 * With --guard, the measured total firings_per_sec is compared
 * against the committed BASELINE json; more than 25% slower fails
 * (exit 1). NUPEA_PERF_GUARD_SKIP=1 skips the comparison (exit 77,
 * the ctest SKIP_RETURN_CODE) for machines where wall-clock is not
 * comparable to the recorded baseline.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>

#include "bench/sweep_runner.h"

namespace
{

using namespace nupea;
using namespace nupea::bench;

const char *const kBasket[] = {"dmv",       "spmv", "spmspv",
                               "mergesort", "ic",   "vww"};

struct NamedConfig
{
    const char *name;
    MemModel model;
    int upeaLatency;
};

const NamedConfig kConfigs[] = {
    {"monaco", MemModel::Monaco, 0},
    {"upea2", MemModel::Upea, 2},
    {"numa-upea2", MemModel::NumaUpea, 2},
};

/** Simulated results that must not depend on the job count. */
bool
sameStats(const BenchRun &a, const BenchRun &b)
{
    return a.fabricCycles == b.fabricCycles &&
           a.systemCycles == b.systemCycles && a.loads == b.loads &&
           a.stores == b.stores && a.firings == b.firings &&
           a.energy.total() == b.energy.total() &&
           a.verified == b.verified;
}

/**
 * Pull `"firings_per_sec": <number>` out of a baseline json's
 * "total" object (it is the file's last occurrence of the key).
 */
bool
readBaselineFiringsPerSec(const std::string &path, double &value)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    const char key[] = "\"firings_per_sec\":";
    std::size_t pos = text.rfind(key);
    if (pos == std::string::npos)
        return false;
    value = std::strtod(text.c_str() + pos + sizeof key - 1, nullptr);
    return value > 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string guard_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        if (std::strcmp(argv[i], "--guard") == 0)
            guard_path = argv[i + 1];
    }
    if (!guard_path.empty() &&
        std::getenv("NUPEA_PERF_GUARD_SKIP") != nullptr) {
        std::printf("perf_smoke: NUPEA_PERF_GUARD_SKIP set, "
                    "skipping guard comparison\n");
        return 77; // ctest SKIP_RETURN_CODE
    }
    if (out_path.empty())
        out_path =
            guard_path.empty() ? "BENCH_perf.json" : "BENCH_perf.guard.json";

    SweepRunner parallel_runner(parseSweepArgs(argc, argv));
    SweepRunner serial_runner(SweepOptions{1});

    // Compile the basket once (through the parallel runner).
    std::vector<CompileSpec> cspecs;
    for (const char *name : kBasket)
        cspecs.push_back(
            {name, Topology::makeMonaco(12, 12), CompileOptions{}});
    auto compile_start = std::chrono::steady_clock::now();
    std::vector<CompiledWorkload> compiled =
        compileAll(parallel_runner, cspecs);
    double compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      compile_start)
            .count();

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        for (const NamedConfig &cfg : kConfigs) {
            rspecs.push_back(
                {&cw, primaryConfig(cfg.model, cfg.upeaLatency),
                 cw.workload->name() + "/" + cfg.name});
        }
    }

    SweepResult serial = runSweep(serial_runner, rspecs);
    SweepResult parallel = runSweep(parallel_runner, rspecs);

    // Same sweep with stall attribution on: the observability tax
    // should stay a small multiple of the plain run.
    std::vector<RunSpec> aspecs = rspecs;
    for (RunSpec &spec : aspecs)
        spec.config.stallAttribution = true;
    SweepResult attr_serial = runSweep(serial_runner, aspecs);

    bool identical = true;
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        if (!sameStats(serial.points[i].run, parallel.points[i].run)) {
            identical = false;
            warn("jobs=1 vs jobs=", parallel.jobs,
                 " stats mismatch at ", serial.points[i].label);
        }
        if (!sameStats(serial.points[i].run, attr_serial.points[i].run)) {
            identical = false;
            warn("attribution on vs off stats mismatch at ",
                 serial.points[i].label);
        }
    }

    std::uint64_t total_fabric = 0, total_firings = 0;
    for (const PointResult &p : serial.points) {
        total_fabric += static_cast<std::uint64_t>(p.run.fabricCycles);
        total_firings += p.run.firings;
    }
    double total_firings_per_sec =
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_firings) / serial.wallSeconds
            : 0.0;

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot open ", out_path, " for writing");
    std::fprintf(f, "{\n  \"bench\": \"perf_smoke\",\n  \"basket\": [");
    for (std::size_t i = 0; i < std::size(kBasket); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kBasket[i]);
    std::fprintf(f, "],\n  \"configs\": [");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kConfigs[i].name);
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"compile_wall_seconds\": %.6f,\n",
                 compile_seconds);
    std::fprintf(
        f,
        "  \"sweep\": {\"points\": %zu, \"serial_wall_seconds\": %.6f, "
        "\"parallel_wall_seconds\": %.6f, \"parallel_jobs\": %d, "
        "\"harness_speedup\": %.3f, "
        "\"attr_serial_wall_seconds\": %.6f, "
        "\"stats_identical\": %s},\n",
        serial.points.size(), serial.wallSeconds, parallel.wallSeconds,
        parallel.jobs,
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 1.0,
        attr_serial.wallSeconds, identical ? "true" : "false");

    // Per-workload aggregates over the config sweep (serial pass).
    std::fprintf(f, "  \"workloads\": {\n");
    for (std::size_t w = 0; w < std::size(kBasket); ++w) {
        double seconds = 0.0;
        std::uint64_t fabric = 0, firings = 0;
        for (std::size_t c = 0; c < std::size(kConfigs); ++c) {
            const PointResult &p =
                serial.points[w * std::size(kConfigs) + c];
            seconds += p.wallSeconds;
            fabric += static_cast<std::uint64_t>(p.run.fabricCycles);
            firings += p.run.firings;
        }
        std::fprintf(
            f,
            "    \"%s\": {\"seconds\": %.6f, "
            "\"firings_per_sec\": %.1f, \"fabric_cycles\": %llu}%s\n",
            kBasket[w], seconds,
            seconds > 0.0 ? static_cast<double>(firings) / seconds : 0.0,
            static_cast<unsigned long long>(fabric),
            w + 1 < std::size(kBasket) ? "," : "");
    }
    std::fprintf(f, "  },\n");

    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const PointResult &p = serial.points[i];
        double per_sec =
            p.wallSeconds > 0.0
                ? static_cast<double>(p.run.fabricCycles) / p.wallSeconds
                : 0.0;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"wall_seconds\": %.6f, "
            "\"parallel_wall_seconds\": %.6f, \"fabric_cycles\": %llu, "
            "\"firings\": %llu, \"fabric_cycles_per_sec\": %.1f}%s\n",
            p.label.c_str(), p.wallSeconds,
            parallel.points[i].wallSeconds,
            static_cast<unsigned long long>(p.run.fabricCycles),
            static_cast<unsigned long long>(p.run.firings), per_sec,
            i + 1 < serial.points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"total\": {\"serial_wall_seconds\": %.6f, "
        "\"attr_serial_wall_seconds\": %.6f, "
        "\"fabric_cycles_per_sec\": %.1f, \"firings_per_sec\": %.1f}\n",
        serial.wallSeconds, attr_serial.wallSeconds,
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_fabric) / serial.wallSeconds
            : 0.0,
        total_firings_per_sec);
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("perf_smoke: %zu points, serial %.3fs, parallel %.3fs "
                "on %d jobs (%.2fx), attribution-on serial %.3fs, "
                "stats identical: %s\n",
                serial.points.size(), serial.wallSeconds,
                parallel.wallSeconds, parallel.jobs,
                parallel.wallSeconds > 0.0
                    ? serial.wallSeconds / parallel.wallSeconds
                    : 1.0,
                attr_serial.wallSeconds, identical ? "yes" : "NO");
    std::printf("wrote %s\n", out_path.c_str());
    if (!identical)
        return 1;

    if (!guard_path.empty()) {
        double baseline = 0.0;
        if (!readBaselineFiringsPerSec(guard_path, baseline)) {
            warn("perf guard: cannot read baseline ", guard_path);
            return 1;
        }
        double ratio = baseline / total_firings_per_sec;
        std::printf("perf guard: baseline %.1f firings/s, measured "
                    "%.1f (%.2fx of baseline cost)\n",
                    baseline, total_firings_per_sec, ratio);
        if (ratio > 1.25) {
            warn("perf guard: sweep is ", ratio,
                 "x slower than the committed baseline (limit 1.25x)");
            return 1;
        }
    }
    return 0;
}
