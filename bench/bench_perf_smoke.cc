/**
 * @file
 * Harness-throughput smoke bench: compiles a small workload basket,
 * expands it into a 66-point config sweep, runs it serially and at a
 * ladder of job counts (pool construction excluded from every timed
 * window, one untimed warmup pass first), checks that every job
 * count produces bit-identical simulated stats, times an
 * attribution-on serial pass, and writes BENCH_perf.json — per-point
 * and per-workload timings plus the serial-vs-parallel scaling curve
 * — so future PRs can see sweep-throughput regressions.
 *
 * Usage: bench_perf_smoke [--jobs N] [--out PATH] [--guard BASELINE]
 *
 * A lane-batched single-thread pass (--lanes equal to the config
 * count, so each workload's whole basket shares one machine) is also
 * timed and checked bit-identical, and its serial/lanes wall ratio is
 * written as "lanes_speedup".
 *
 * The static analyzer (one interpreter profile per workload, then
 * predictPerformance per point — exactly the scoring work --prune
 * does) is also timed over the 66-point basket, min-of-3, and written
 * as "analyzer_points_per_sec" so analyzer slowdowns are visible.
 *
 * The simulated-annealing placer is timed the same way: a min-of-3
 * single-chain pass over the basket ("placer_points_per_sec"), plus
 * one 4-chain portfolio pass whose total placement cost is written
 * next to the single-seed cost ("placer_portfolio_cost" /
 * "placer_single_cost"). Costs are a pure function of the seeds, so
 * the guard's quality gate — portfolio never worse than single-seed
 * on the basket — is deterministic on any host.
 *
 * With --guard, the measured total firings_per_sec is compared
 * against the committed BASELINE json; more than 25% slower fails
 * (exit 1). Three further gates run:
 *  - lanes_speedup >= 0.85: lane batching must stay at parity with
 *    the scalar path (same-process min-of-3 wall ratio, so it is
 *    meaningful on any host);
 *  - no point whose serial wall is >= 1ms may take more than 3x its
 *    serial wall in the largest parallel pass the host can physically
 *    run (jobs <= cpus; per-point timing-artifact gate — store
 *    acquisition lives outside the timed span, so only preemption can
 *    inflate a point, and comparing an oversubscribed pass would
 *    measure time-slicing, not the harness);
 *  - on hosts with >= 4 cores the measured harness_speedup at jobs
 *    >= 4 must reach 1.5 (the parallel-sweep regression gate); hosts
 *    with fewer cores print a note and skip that gate;
 *  - analyzer_points_per_sec must stay within 1.5x of the baseline's
 *    (min-of-3 walls on both sides damp preemption noise). Baselines
 *    recorded before the analyzer existed lack the key; the gate
 *    prints a note and skips rather than failing.
 * NUPEA_PERF_GUARD_SKIP=1 skips every comparison (exit 77, the ctest
 * SKIP_RETURN_CODE) for machines where wall-clock is not comparable
 * to the recorded baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/perf_model.h"
#include "analysis/profile.h"
#include "bench/sweep_runner.h"

namespace
{

using namespace nupea;
using namespace nupea::bench;

const char *const kBasket[] = {"dmv",       "spmv", "spmspv",
                               "mergesort", "ic",   "vww"};

struct NamedConfig
{
    const char *name;
    MemModel model;
    int upeaLatency;
};

/** 11 configs x 6 workloads = 66 points: enough work that the
 *  parallel harness is measured against real task supply, not the
 *  18-point basket whose per-task overhead once dominated. */
const NamedConfig kConfigs[] = {
    {"monaco", MemModel::Monaco, 0},
    {"upea1", MemModel::Upea, 1},
    {"upea2", MemModel::Upea, 2},
    {"upea3", MemModel::Upea, 3},
    {"upea4", MemModel::Upea, 4},
    {"upea6", MemModel::Upea, 6},
    {"numa-upea1", MemModel::NumaUpea, 1},
    {"numa-upea2", MemModel::NumaUpea, 2},
    {"numa-upea3", MemModel::NumaUpea, 3},
    {"numa-upea4", MemModel::NumaUpea, 4},
    {"numa-upea6", MemModel::NumaUpea, 6},
};

/** Simulated results that must not depend on the job count. */
bool
sameStats(const BenchRun &a, const BenchRun &b)
{
    return a.fabricCycles == b.fabricCycles &&
           a.systemCycles == b.systemCycles && a.loads == b.loads &&
           a.stores == b.stores && a.firings == b.firings &&
           a.energy.total() == b.energy.total() &&
           a.verified == b.verified;
}

/** Slurp a baseline json into memory. */
bool
readBaselineText(const std::string &path, std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return true;
}

/**
 * Pull `"<key>": <number>` out of a baseline json by its LAST
 * occurrence — for "firings_per_sec" that is the "total" object's
 * copy, not a per-workload one. Keys the baseline predates (e.g.
 * "analyzer_points_per_sec") simply return false.
 */
bool
readBaselineValue(const std::string &text, const char *key,
                  double &value)
{
    std::string needle = std::string("\"") + key + "\":";
    std::size_t pos = text.rfind(needle);
    if (pos == std::string::npos)
        return false;
    value = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    return value > 0.0;
}

/** One timed sweep at a fixed job count; the runner (and its thread
 *  pool) is constructed before the timed window inside runSweep. */
SweepResult
timedSweep(int jobs, const std::vector<RunSpec> &specs)
{
    SweepRunner runner(SweepOptions{jobs});
    return runSweep(runner, specs);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string guard_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        if (std::strcmp(argv[i], "--guard") == 0)
            guard_path = argv[i + 1];
    }
    if (!guard_path.empty() &&
        std::getenv("NUPEA_PERF_GUARD_SKIP") != nullptr) {
        std::printf("perf_smoke: NUPEA_PERF_GUARD_SKIP set, "
                    "skipping guard comparison\n");
        return 77; // ctest SKIP_RETURN_CODE
    }
    if (out_path.empty())
        out_path =
            guard_path.empty() ? "BENCH_perf.json" : "BENCH_perf.guard.json";

    SweepOptions opts = parseSweepArgs(argc, argv, {"--out", "--guard"});
    // The headline parallel measurement is pinned to 8 jobs (matching
    // the committed baseline) unless --jobs overrides it; the ladder
    // below fills in the rest of the scaling curve.
    const int headline_jobs = opts.jobs > 0 ? opts.jobs : 8;
    std::vector<int> ladder{2, 4, headline_jobs};
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()),
                 ladder.end());
    ladder.erase(std::remove_if(ladder.begin(), ladder.end(),
                                [](int j) { return j <= 1; }),
                 ladder.end());

    // Compile the basket once, through a pool at the headline width.
    SweepRunner compile_runner(SweepOptions{headline_jobs});
    std::vector<CompileSpec> cspecs;
    for (const char *name : kBasket)
        cspecs.push_back(
            {name, Topology::makeMonaco(12, 12), CompileOptions{}});
    auto compile_start = std::chrono::steady_clock::now();
    std::vector<CompiledWorkload> compiled =
        compileAll(compile_runner, cspecs);
    double compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      compile_start)
            .count();

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        for (const NamedConfig &cfg : kConfigs) {
            rspecs.push_back(
                {&cw, primaryConfig(cfg.model, cfg.upeaLatency),
                 cw.workload->name() + "/" + cfg.name});
        }
    }

    // Static-analyzer throughput: one interpreter profile per
    // workload plus predictPerformance for every point — exactly the
    // scoring work a --prune sweep does before simulating. Min-of-3
    // walls, same noise-damping policy as the lanes parity gate. The
    // checksum keeps the optimizer from eliding the passes.
    double analyzer_seconds = 0.0;
    double analyzer_checksum = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        auto analyzer_start = std::chrono::steady_clock::now();
        double checksum = 0.0;
        for (const CompiledWorkload &cw : compiled) {
            ExecutionProfile profile = profileGraph(
                cw.graph, cw.image, MemSysConfig{}.memBytes);
            for (const NamedConfig &cfg : kConfigs) {
                MachineConfig c =
                    primaryConfig(cfg.model, cfg.upeaLatency);
                PerfModelConfig pc{c.mem, c.memsys, c.energy,
                                   c.clockDivider, c.maxOutstanding,
                                   c.fifoDepth};
                PerfPrediction pred = predictPerformance(
                    cw.graph, cw.pnr.placement, cw.topo, profile, pc);
                checksum += pred.systemCycles;
            }
        }
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          analyzer_start)
                          .count();
        analyzer_seconds =
            rep == 0 ? wall : std::min(analyzer_seconds, wall);
        analyzer_checksum = checksum;
    }
    const double analyzer_points_per_sec =
        analyzer_seconds > 0.0
            ? static_cast<double>(rspecs.size()) / analyzer_seconds
            : 0.0;

    // Placer throughput + portfolio quality: re-anneal every basket
    // workload single-chain (min-of-3 walls, same noise policy as the
    // analyzer), then once as a serial 4-chain portfolio. Criticality
    // classes were marked on the graphs by placeAndRoute, so this
    // times exactly the anneal. Placement costs are a pure function
    // of the seeds — the guard's quality gate below is deterministic
    // on any host.
    const int kPortfolioChains = 4;
    auto basePlacerOptions = [] {
        CompileOptions defaults;
        PlacerOptions p;
        p.mode = defaults.mode;
        p.seed = defaults.seed;
        p.iterationsPerNode = defaults.saIterationsPerNode;
        return p;
    };
    double placer_seconds = 0.0;
    double placer_single_cost = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        auto placer_start = std::chrono::steady_clock::now();
        double cost = 0.0;
        for (const CompiledWorkload &cw : compiled) {
            PortfolioStats stats;
            placeGraph(cw.graph, cw.topo, basePlacerOptions(), &stats);
            cost += stats.winnerCost;
        }
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          placer_start)
                          .count();
        placer_seconds =
            rep == 0 ? wall : std::min(placer_seconds, wall);
        placer_single_cost = cost;
    }
    const double placer_points_per_sec =
        placer_seconds > 0.0
            ? static_cast<double>(compiled.size()) / placer_seconds
            : 0.0;

    double placer_portfolio_cost = 0.0;
    for (const CompiledWorkload &cw : compiled) {
        PlacerOptions popts = basePlacerOptions();
        popts.portfolio.chains = kPortfolioChains;
        PortfolioStats stats;
        placeGraph(cw.graph, cw.topo, popts, &stats);
        placer_portfolio_cost += stats.winnerCost;
    }

    SweepRunner serial_runner(SweepOptions{1});

    // Untimed warmup: faults the shared images and per-arena pages,
    // warms code paths, so the timed serial pass is not charged
    // one-time host costs the parallel passes then skip.
    runSweep(serial_runner, rspecs);

    SweepResult serial = runSweep(serial_runner, rspecs);

    std::vector<SweepResult> scaled;
    scaled.reserve(ladder.size());
    for (int jobs : ladder)
        scaled.push_back(timedSweep(jobs, rspecs));
    const SweepResult &parallel = scaled.back(); // headline jobs

    // Same sweep with stall attribution on: the observability tax
    // should stay a small multiple of the plain run.
    std::vector<RunSpec> aspecs = rspecs;
    for (RunSpec &spec : aspecs)
        spec.config.stallAttribution = true;
    SweepResult attr_serial = runSweep(serial_runner, aspecs);

    // Lane-batched single-thread pass: each workload's 11 configs run
    // as lanes of one machine sharing dispatch tables (--lanes in the
    // sweep harness). Same untimed warmup as the serial pass, then
    // one timed run; lanes_speedup below is a same-process
    // serial/lanes wall ratio, so the gate on it is meaningful on any
    // host, unlike harness_speedup.
    SweepOptions lane_opts{1};
    lane_opts.lanes = static_cast<int>(std::size(kConfigs));
    SweepRunner lane_runner(lane_opts);
    runSweep(lane_runner, rspecs);
    SweepResult laned = runSweep(lane_runner, rspecs);

    // Noise damping for the parity gate: a single wall measurement on
    // a busy host swings +-10% or more from preemption, enough to
    // trip any honest parity floor. The gated ratio uses min-of-3
    // alternating walls — the minimum is the least-preempted run of
    // each engine, and alternating keeps thermal/frequency drift from
    // favoring one side.
    double serial_best = serial.wallSeconds;
    double laned_best = laned.wallSeconds;
    for (int rep = 0; rep < 2; ++rep) {
        serial_best = std::min(
            serial_best, runSweep(serial_runner, rspecs).wallSeconds);
        laned_best = std::min(
            laned_best, runSweep(lane_runner, rspecs).wallSeconds);
    }

    bool identical = true;
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        for (const SweepResult &sw : scaled) {
            if (!sameStats(serial.points[i].run, sw.points[i].run)) {
                identical = false;
                warn("jobs=1 vs jobs=", sw.jobs, " stats mismatch at ",
                     serial.points[i].label);
            }
        }
        if (!sameStats(serial.points[i].run, attr_serial.points[i].run)) {
            identical = false;
            warn("attribution on vs off stats mismatch at ",
                 serial.points[i].label);
        }
        if (!sameStats(serial.points[i].run, laned.points[i].run)) {
            identical = false;
            warn("scalar vs lane-batched stats mismatch at ",
                 serial.points[i].label);
        }
    }

    std::uint64_t total_fabric = 0, total_firings = 0;
    for (const PointResult &p : serial.points) {
        total_fabric += static_cast<std::uint64_t>(p.run.fabricCycles);
        total_firings += p.run.firings;
    }
    double total_firings_per_sec =
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_firings) / serial.wallSeconds
            : 0.0;
    auto speedupOf = [&](const SweepResult &sw) {
        return sw.wallSeconds > 0.0
                   ? serial.wallSeconds / sw.wallSeconds
                   : 1.0;
    };
    const double lanes_speedup =
        laned_best > 0.0 ? serial_best / laned_best : 1.0;
    const unsigned host_cpus =
        std::max(1u, std::thread::hardware_concurrency());

    // Per-point timing-artifact data compares a point's wall under a
    // parallel pass against its serial wall. That is only meaningful
    // when the host can actually run the workers in parallel: with
    // more jobs than cpus, time-slicing alone inflates a point's wall
    // by roughly the oversubscription factor with no harness defect
    // to find. Use the largest measured pass the host can physically
    // parallelize; on a single-cpu host that degenerates to the
    // serial pass itself (ratio 1, gate trivially green).
    const SweepResult *artifact = &serial;
    int artifact_jobs = 1;
    for (const SweepResult &sw : scaled) {
        if (sw.jobs <= static_cast<int>(host_cpus)) {
            artifact = &sw;
            artifact_jobs = sw.jobs;
        }
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot open ", out_path, " for writing");
    std::fprintf(f, "{\n  \"bench\": \"perf_smoke\",\n  \"basket\": [");
    for (std::size_t i = 0; i < std::size(kBasket); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kBasket[i]);
    std::fprintf(f, "],\n  \"configs\": [");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kConfigs[i].name);
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
    std::fprintf(f, "  \"artifact_pass_jobs\": %d,\n", artifact_jobs);
    std::fprintf(f, "  \"compile_wall_seconds\": %.6f,\n",
                 compile_seconds);
    std::fprintf(
        f,
        "  \"sweep\": {\"points\": %zu, \"serial_wall_seconds\": %.6f, "
        "\"parallel_wall_seconds\": %.6f, \"parallel_jobs\": %d, "
        "\"harness_speedup\": %.3f, "
        "\"attr_serial_wall_seconds\": %.6f, "
        "\"lanes\": %d, \"lanes_wall_seconds\": %.6f, "
        "\"lanes_speedup\": %.3f, "
        "\"stats_identical\": %s},\n",
        serial.points.size(), serial.wallSeconds, parallel.wallSeconds,
        parallel.jobs, speedupOf(parallel), attr_serial.wallSeconds,
        lane_opts.lanes, laned.wallSeconds, lanes_speedup,
        identical ? "true" : "false");

    // The scaling curve: wall seconds and speedup per job count.
    std::fprintf(f, "  \"scaling\": [\n");
    std::fprintf(f,
                 "    {\"jobs\": 1, \"wall_seconds\": %.6f, "
                 "\"speedup\": 1.000},\n",
                 serial.wallSeconds);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
        std::fprintf(f,
                     "    {\"jobs\": %d, \"wall_seconds\": %.6f, "
                     "\"speedup\": %.3f}%s\n",
                     scaled[i].jobs, scaled[i].wallSeconds,
                     speedupOf(scaled[i]),
                     i + 1 < scaled.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    // Per-workload aggregates over the config sweep (serial pass).
    std::fprintf(f, "  \"workloads\": {\n");
    for (std::size_t w = 0; w < std::size(kBasket); ++w) {
        double seconds = 0.0;
        std::uint64_t fabric = 0, firings = 0;
        for (std::size_t c = 0; c < std::size(kConfigs); ++c) {
            const PointResult &p =
                serial.points[w * std::size(kConfigs) + c];
            seconds += p.wallSeconds;
            fabric += static_cast<std::uint64_t>(p.run.fabricCycles);
            firings += p.run.firings;
        }
        std::fprintf(
            f,
            "    \"%s\": {\"seconds\": %.6f, "
            "\"firings_per_sec\": %.1f, \"fabric_cycles\": %llu}%s\n",
            kBasket[w], seconds,
            seconds > 0.0 ? static_cast<double>(firings) / seconds : 0.0,
            static_cast<unsigned long long>(fabric),
            w + 1 < std::size(kBasket) ? "," : "");
    }
    std::fprintf(f, "  },\n");

    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const PointResult &p = serial.points[i];
        double per_sec =
            p.wallSeconds > 0.0
                ? static_cast<double>(p.run.fabricCycles) / p.wallSeconds
                : 0.0;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"wall_seconds\": %.6f, "
            "\"parallel_wall_seconds\": %.6f, \"fabric_cycles\": %llu, "
            "\"firings\": %llu, \"fabric_cycles_per_sec\": %.1f}%s\n",
            p.label.c_str(), p.wallSeconds,
            artifact->points[i].wallSeconds,
            static_cast<unsigned long long>(p.run.fabricCycles),
            static_cast<unsigned long long>(p.run.firings), per_sec,
            i + 1 < serial.points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Keys unique to this object sit BEFORE "total": the guard's
    // baseline parser takes the LAST occurrence of shared keys like
    // firings_per_sec, which must stay the total object's.
    std::fprintf(
        f,
        "  \"analyzer\": {\"points\": %zu, \"wall_seconds\": %.6f, "
        "\"analyzer_points_per_sec\": %.1f, "
        "\"predicted_system_cycles_sum\": %.1f},\n",
        rspecs.size(), analyzer_seconds, analyzer_points_per_sec,
        analyzer_checksum);
    std::fprintf(
        f,
        "  \"placer\": {\"workloads\": %zu, \"wall_seconds\": %.6f, "
        "\"placer_points_per_sec\": %.1f, "
        "\"placer_single_cost\": %.3f, "
        "\"placer_portfolio_cost\": %.3f, "
        "\"portfolio_chains\": %d},\n",
        compiled.size(), placer_seconds, placer_points_per_sec,
        placer_single_cost, placer_portfolio_cost, kPortfolioChains);
    std::fprintf(
        f,
        "  \"total\": {\"serial_wall_seconds\": %.6f, "
        "\"attr_serial_wall_seconds\": %.6f, "
        "\"fabric_cycles_per_sec\": %.1f, \"firings_per_sec\": %.1f}\n",
        serial.wallSeconds, attr_serial.wallSeconds,
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_fabric) / serial.wallSeconds
            : 0.0,
        total_firings_per_sec);
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("perf_smoke: %zu points, serial %.3fs; scaling:",
                serial.points.size(), serial.wallSeconds);
    for (const SweepResult &sw : scaled)
        std::printf(" jobs=%d %.3fs (%.2fx)", sw.jobs, sw.wallSeconds,
                    speedupOf(sw));
    std::printf("; lanes=%d %.3fs (%.2fx); attribution-on serial "
                "%.3fs, stats identical: %s\n",
                lane_opts.lanes, laned.wallSeconds, lanes_speedup,
                attr_serial.wallSeconds, identical ? "yes" : "NO");
    std::printf("analyzer: %zu points in %.4fs (%.0f points/s)\n",
                rspecs.size(), analyzer_seconds,
                analyzer_points_per_sec);
    std::printf("placer: %zu anneals in %.4fs (%.1f points/s); basket "
                "cost single %.1f vs %d-chain portfolio %.1f\n",
                compiled.size(), placer_seconds, placer_points_per_sec,
                placer_single_cost, kPortfolioChains,
                placer_portfolio_cost);
    std::printf("wrote %s\n", out_path.c_str());
    if (!identical)
        return 1;

    if (!guard_path.empty()) {
        std::string baseline_text;
        if (!readBaselineText(guard_path, baseline_text)) {
            warn("perf guard: cannot read baseline ", guard_path);
            return 1;
        }
        double baseline = 0.0;
        if (!readBaselineValue(baseline_text, "firings_per_sec",
                               baseline)) {
            warn("perf guard: baseline ", guard_path,
                 " has no firings_per_sec");
            return 1;
        }
        double ratio = baseline / total_firings_per_sec;
        std::printf("perf guard: baseline %.1f firings/s, measured "
                    "%.1f (%.2fx of baseline cost)\n",
                    baseline, total_firings_per_sec, ratio);
        if (ratio > 1.25) {
            warn("perf guard: sweep is ", ratio,
                 "x slower than the committed baseline (limit 1.25x)");
            return 1;
        }

        // Analyzer-throughput gate: the static scorer must stay fast
        // enough that pruning a sweep is always cheaper than
        // simulating it. Both sides are min-of-3 walls, so 1.5x slack
        // covers host noise without hiding a real slowdown. A
        // baseline recorded before the analyzer existed lacks the
        // key; skip rather than fail so re-pinning stays optional.
        double analyzer_baseline = 0.0;
        if (readBaselineValue(baseline_text, "analyzer_points_per_sec",
                              analyzer_baseline)) {
            double aratio =
                analyzer_points_per_sec > 0.0
                    ? analyzer_baseline / analyzer_points_per_sec
                    : 1e9;
            std::printf("perf guard: analyzer baseline %.1f points/s, "
                        "measured %.1f (%.2fx of baseline cost)\n",
                        analyzer_baseline, analyzer_points_per_sec,
                        aratio);
            if (aratio > 1.5) {
                warn("perf guard: static analyzer is ", aratio,
                     "x slower than the committed baseline (limit "
                     "1.5x; set NUPEA_PERF_GUARD_SKIP=1 on "
                     "incomparable machines)");
                return 1;
            }
        } else {
            std::printf("perf guard: baseline has no "
                        "analyzer_points_per_sec; skipping the "
                        "analyzer gate (re-pin BENCH_perf.json to "
                        "arm it)\n");
        }

        // Placer-throughput gate: same shape as the analyzer gate
        // (min-of-3 walls both sides, 1.5x slack, skip-with-note when
        // the baseline predates the key).
        double placer_baseline = 0.0;
        if (readBaselineValue(baseline_text, "placer_points_per_sec",
                              placer_baseline)) {
            double pratio = placer_points_per_sec > 0.0
                                ? placer_baseline / placer_points_per_sec
                                : 1e9;
            std::printf("perf guard: placer baseline %.1f points/s, "
                        "measured %.1f (%.2fx of baseline cost)\n",
                        placer_baseline, placer_points_per_sec, pratio);
            if (pratio > 1.5) {
                warn("perf guard: annealing placer is ", pratio,
                     "x slower than the committed baseline (limit "
                     "1.5x; set NUPEA_PERF_GUARD_SKIP=1 on "
                     "incomparable machines)");
                return 1;
            }
        } else {
            std::printf("perf guard: baseline has no "
                        "placer_points_per_sec; skipping the placer "
                        "gate (re-pin BENCH_perf.json to arm it)\n");
        }

        // Portfolio-quality gate: a pure cost comparison, so no
        // baseline and no host-speed caveats. The 4-chain portfolio
        // must never pick a worse basket than the single seed; a
        // violation means the epoch/kill machinery regressed (e.g. a
        // snapshot bug dropping the winner's best state).
        std::printf("perf guard: placer basket cost single %.1f vs "
                    "%d-chain portfolio %.1f\n",
                    placer_single_cost, kPortfolioChains,
                    placer_portfolio_cost);
        if (placer_portfolio_cost > placer_single_cost) {
            warn("perf guard: portfolio placer regression: ",
                 kPortfolioChains, "-chain basket cost ",
                 placer_portfolio_cost, " exceeds single-seed ",
                 placer_single_cost);
            return 1;
        }

        // Lane-batching gate: running each workload's config basket
        // as lanes of one machine must never cost materially more
        // than running the same points scalar. Both sides are
        // measured single-threaded in this process, so the ratio is
        // host-independent and the gate runs even where
        // harness_speedup below is skipped. The floor is parity with
        // margin, not the 2x amortization target: lanes are required
        // to be byte-identical to the scalar machine lane-for-lane,
        // which pins each lane's visit order, firing order, and
        // memory-access order to the scalar schedule and so forbids
        // every cross-lane batching trick that could beat scalar
        // per-lane work (see DESIGN.md "Batched lane Machine"). What
        // the gate protects against is batching pathologies like the
        // cross-lane lockstep stepping that measured 0.62x.
        std::printf("perf guard: lanes_speedup %.2fx at lanes=%d "
                    "(floor 0.85x)\n",
                    lanes_speedup, lane_opts.lanes);
        if (lanes_speedup < 0.85) {
            warn("perf guard: lane-batched sweep regression: ",
                 lanes_speedup, "x vs scalar serial (floor 0.85x; set "
                 "NUPEA_PERF_GUARD_SKIP=1 on incomparable machines)");
            return 1;
        }

        // Per-point timing-artifact gate: store acquisition (mmap +
        // prefault) happens outside the timed span, so a point's
        // parallel wall time can exceed its serial wall time only
        // through scheduler preemption — never by the 15x+ that the
        // in-span acquire storm once produced. The comparison pass is
        // the artifact pass chosen above (largest jobs the host can
        // physically run in parallel): with jobs > cpus, time-slicing
        // alone inflates a point by the oversubscription factor, which
        // is the measurement environment, not the harness. On a
        // single-cpu host the pass degenerates to serial-vs-serial and
        // the gate is trivially green — same policy as the
        // harness_speedup gate below. Sub-millisecond points are
        // skipped: one preemption straddle multiplies a
        // microsecond-scale point arbitrarily without any harness
        // defect to find.
        double worst_ratio = 0.0;
        const char *worst_label = "";
        for (std::size_t i = 0; i < serial.points.size(); ++i) {
            double s = serial.points[i].wallSeconds;
            double p = artifact->points[i].wallSeconds;
            if (s < 1e-3)
                continue;
            double point_ratio = p / s;
            if (point_ratio > worst_ratio) {
                worst_ratio = point_ratio;
                worst_label = serial.points[i].label.c_str();
            }
        }
        if (artifact_jobs < 2)
            std::printf("perf guard: host has %u cpu(s); per-point "
                        "gate compares the serial pass to itself\n",
                        host_cpus);
        std::printf("perf guard: worst per-point parallel/serial "
                    "%.2fx at %s across jobs=%d (limit 3.00x)\n",
                    worst_ratio, worst_label, artifact_jobs);
        if (worst_ratio > 3.0) {
            warn("perf guard: per-point timing artifact: ", worst_label,
                 " measured ", worst_ratio, "x its serial wall at jobs=",
                 artifact_jobs, " with identical stats (limit 3x; set "
                 "NUPEA_PERF_GUARD_SKIP=1 on incomparable machines)");
            return 1;
        }

        // Parallel-scaling gate: the fixed scheduler must beat serial
        // by 1.5x at every measured jobs >= 4 — but only where the
        // host can physically provide the parallelism.
        if (host_cpus >= 4) {
            for (const SweepResult &sw : scaled) {
                if (sw.jobs < 4)
                    continue;
                double speedup = speedupOf(sw);
                std::printf("perf guard: harness_speedup %.2fx at "
                            "jobs=%d (floor 1.50x)\n",
                            speedup, sw.jobs);
                if (speedup < 1.5) {
                    warn("perf guard: parallel sweep regression: ",
                         speedup, "x speedup at jobs=", sw.jobs,
                         " (floor 1.5x; set NUPEA_PERF_GUARD_SKIP=1 "
                         "on incomparable machines)");
                    return 1;
                }
            }
        } else {
            std::printf("perf guard: host has %u cpu(s); skipping the "
                        "jobs>=4 harness_speedup gate\n",
                        host_cpus);
        }
    }
    return 0;
}
