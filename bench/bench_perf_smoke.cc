/**
 * @file
 * Harness-throughput smoke bench: compiles a small workload basket,
 * runs the same sweep serially (--jobs 1) and in parallel (--jobs N),
 * checks the two produce bit-identical simulated stats, and writes
 * BENCH_perf.json — per-point timings plus serial-vs-parallel sweep
 * wall-clock — so future PRs can see sweep-throughput regressions.
 *
 * Usage: bench_perf_smoke [--jobs N] [--out PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>

#include "bench/sweep_runner.h"

namespace
{

using namespace nupea;
using namespace nupea::bench;

const char *const kBasket[] = {"dmv",       "spmv", "spmspv",
                               "mergesort", "ic",   "vww"};

struct NamedConfig
{
    const char *name;
    MemModel model;
    int upeaLatency;
};

const NamedConfig kConfigs[] = {
    {"monaco", MemModel::Monaco, 0},
    {"upea2", MemModel::Upea, 2},
    {"numa-upea2", MemModel::NumaUpea, 2},
};

/** Simulated results that must not depend on the job count. */
bool
sameStats(const BenchRun &a, const BenchRun &b)
{
    return a.fabricCycles == b.fabricCycles &&
           a.systemCycles == b.systemCycles && a.loads == b.loads &&
           a.stores == b.stores && a.firings == b.firings &&
           a.energy.total() == b.energy.total() &&
           a.verified == b.verified;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_perf.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
    }

    SweepRunner parallel_runner(parseSweepArgs(argc, argv));
    SweepRunner serial_runner(SweepOptions{1});

    // Compile the basket once (through the parallel runner).
    std::vector<CompileSpec> cspecs;
    for (const char *name : kBasket)
        cspecs.push_back(
            {name, Topology::makeMonaco(12, 12), CompileOptions{}});
    auto compile_start = std::chrono::steady_clock::now();
    std::vector<CompiledWorkload> compiled =
        compileAll(parallel_runner, cspecs);
    double compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      compile_start)
            .count();

    std::vector<RunSpec> rspecs;
    for (const CompiledWorkload &cw : compiled) {
        for (const NamedConfig &cfg : kConfigs) {
            rspecs.push_back(
                {&cw, primaryConfig(cfg.model, cfg.upeaLatency),
                 cw.workload->name() + "/" + cfg.name});
        }
    }

    SweepResult serial = runSweep(serial_runner, rspecs);
    SweepResult parallel = runSweep(parallel_runner, rspecs);

    bool identical = true;
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        if (!sameStats(serial.points[i].run, parallel.points[i].run)) {
            identical = false;
            warn("jobs=1 vs jobs=", parallel.jobs,
                 " stats mismatch at ", serial.points[i].label);
        }
    }

    std::uint64_t total_fabric = 0, total_firings = 0;
    for (const PointResult &p : serial.points) {
        total_fabric += static_cast<std::uint64_t>(p.run.fabricCycles);
        total_firings += p.run.firings;
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot open ", out_path, " for writing");
    std::fprintf(f, "{\n  \"bench\": \"perf_smoke\",\n  \"basket\": [");
    for (std::size_t i = 0; i < std::size(kBasket); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kBasket[i]);
    std::fprintf(f, "],\n  \"configs\": [");
    for (std::size_t i = 0; i < std::size(kConfigs); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", kConfigs[i].name);
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"compile_wall_seconds\": %.6f,\n",
                 compile_seconds);
    std::fprintf(
        f,
        "  \"sweep\": {\"points\": %zu, \"serial_wall_seconds\": %.6f, "
        "\"parallel_wall_seconds\": %.6f, \"parallel_jobs\": %d, "
        "\"harness_speedup\": %.3f, \"stats_identical\": %s},\n",
        serial.points.size(), serial.wallSeconds, parallel.wallSeconds,
        parallel.jobs,
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 1.0,
        identical ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const PointResult &p = serial.points[i];
        double per_sec =
            p.wallSeconds > 0.0
                ? static_cast<double>(p.run.fabricCycles) / p.wallSeconds
                : 0.0;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"wall_seconds\": %.6f, "
            "\"parallel_wall_seconds\": %.6f, \"fabric_cycles\": %llu, "
            "\"firings\": %llu, \"fabric_cycles_per_sec\": %.1f}%s\n",
            p.label.c_str(), p.wallSeconds,
            parallel.points[i].wallSeconds,
            static_cast<unsigned long long>(p.run.fabricCycles),
            static_cast<unsigned long long>(p.run.firings), per_sec,
            i + 1 < serial.points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"total\": {\"serial_wall_seconds\": %.6f, "
        "\"fabric_cycles_per_sec\": %.1f, \"firings_per_sec\": %.1f}\n",
        serial.wallSeconds,
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_fabric) / serial.wallSeconds
            : 0.0,
        serial.wallSeconds > 0.0
            ? static_cast<double>(total_firings) / serial.wallSeconds
            : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("perf_smoke: %zu points, serial %.3fs, parallel %.3fs "
                "on %d jobs (%.2fx), stats identical: %s\n",
                serial.points.size(), serial.wallSeconds,
                parallel.wallSeconds, parallel.jobs,
                parallel.wallSeconds > 0.0
                    ? serial.wallSeconds / parallel.wallSeconds
                    : 1.0,
                identical ? "yes" : "NO");
    std::printf("wrote %s\n", out_path.c_str());
    return identical ? 0 : 1;
}
