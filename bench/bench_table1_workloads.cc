/**
 * @file
 * Reproduces Table 1: the application suite with its inputs, plus
 * reproduction-side statistics (scaled inputs, DFG size, criticality
 * breakdown) that the paper's table implies.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "compiler/criticality.h"

int
main()
{
    using namespace nupea;

    std::printf("Table 1: Applications (paper inputs vs. this "
                "reproduction's scaled inputs)\n\n");
    std::printf("%-10s %-42s %-34s %-28s %6s %5s %5s %5s\n",
                "app", "description", "paper input", "scaled input",
                "nodes", "crit", "innr", "othr");

    for (const auto &name : workloadNames()) {
        auto wl = makeWorkload(name);
        BackingStore store(MemSysConfig{}.memBytes);
        wl->init(store);
        Graph g = wl->build(1);
        auto crit = analyzeCriticality(g);
        std::printf("%-10s %-42s %-34s %-28s %6zu %5zu %5zu %5zu\n",
                    wl->name().c_str(), wl->description().c_str(),
                    wl->paperInput().c_str(), wl->scaledInput().c_str(),
                    g.numNodes(), crit.critical, crit.innerLoop,
                    crit.otherMem);
    }
    std::printf("\n(crit/innr/othr = memory instructions by effcc "
                "criticality class at parallelism 1)\n");
    return 0;
}
