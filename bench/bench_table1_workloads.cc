/**
 * @file
 * Reproduces Table 1: the application suite with its inputs, plus
 * reproduction-side statistics (scaled inputs, DFG size, criticality
 * breakdown) that the paper's table implies.
 *
 * Rows build concurrently through the sweep runner (--jobs N /
 * NUPEA_BENCH_JOBS); output order is fixed by submission order.
 */

#include <cstdio>

#include "bench/sweep_runner.h"
#include "compiler/criticality.h"

namespace
{

/** Everything one printed table row needs. */
struct Table1Row
{
    std::string name;
    std::string description;
    std::string paperInput;
    std::string scaledInput;
    std::size_t nodes = 0;
    std::size_t critical = 0;
    std::size_t innerLoop = 0;
    std::size_t otherMem = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace nupea;
    using namespace nupea::bench;

    SweepRunner runner(parseSweepArgs(argc, argv));

    // Table 1 needs no PnR or simulation — each row is one build +
    // criticality analysis, dispatched as its own sweep task.
    std::vector<std::function<Table1Row()>> tasks;
    for (const auto &name : workloadNames()) {
        tasks.push_back([name]() {
            auto wl = makeWorkload(name);
            BackingStore store(MemSysConfig{}.memBytes);
            wl->init(store);
            Graph g = wl->build(1);
            auto crit = analyzeCriticality(g);
            Table1Row row;
            row.name = wl->name();
            row.description = wl->description();
            row.paperInput = wl->paperInput();
            row.scaledInput = wl->scaledInput();
            row.nodes = g.numNodes();
            row.critical = crit.critical;
            row.innerLoop = crit.innerLoop;
            row.otherMem = crit.otherMem;
            return row;
        });
    }
    std::vector<Table1Row> rows = runner.map(std::move(tasks));

    std::printf("Table 1: Applications (paper inputs vs. this "
                "reproduction's scaled inputs)\n\n");
    std::printf("%-10s %-42s %-34s %-28s %6s %5s %5s %5s\n",
                "app", "description", "paper input", "scaled input",
                "nodes", "crit", "innr", "othr");

    for (const Table1Row &row : rows) {
        std::printf("%-10s %-42s %-34s %-28s %6zu %5zu %5zu %5zu\n",
                    row.name.c_str(), row.description.c_str(),
                    row.paperInput.c_str(), row.scaledInput.c_str(),
                    row.nodes, row.critical, row.innerLoop,
                    row.otherMem);
    }
    std::printf("\n(crit/innr/othr = memory instructions by effcc "
                "criticality class at parallelism 1)\n");
    return 0;
}
