#include "bench/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <unordered_set>

#include "common/log.h"
#include "sim/machine_lanes.h"
#include "sim/trace.h"

namespace nupea
{
namespace bench
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
parseCountValue(const char *opt, const std::string &text)
{
    try {
        int value = std::stoi(text);
        if (value < 1)
            fatal(opt, " must be >= 1, got ", text);
        return value;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal(opt, " expects an integer, got '", text, "'");
    }
}

int
parseJobsValue(const std::string &text)
{
    return parseCountValue("--jobs", text);
}

void
printUsage(std::FILE *to, const char *prog,
           const std::vector<std::string> &extraValueOpts,
           const std::vector<std::string> &extraFlags)
{
    std::fprintf(to,
                 "usage: %s [options]\n"
                 "  --jobs N | -j N | -jN   worker threads (default: "
                 "NUPEA_BENCH_JOBS, else core count)\n"
                 "  --lanes N               batch up to N compatible "
                 "points per lockstep machine (default 1)\n"
                 "  --stall-report          per-point stall-attribution "
                 "tables after the sweep\n"
                 "  --trace-out DIR         one Chrome trace_event JSON "
                 "per point into DIR\n"
                 "  --verify | --no-verify  static verifier on every "
                 "compilation (default on)\n"
                 "  --help | -h             this message\n",
                 prog);
    for (const std::string &opt : extraValueOpts)
        std::fprintf(to, "  %s VALUE\n", opt.c_str());
    for (const std::string &opt : extraFlags)
        std::fprintf(to, "  %s\n", opt.c_str());
}

/** Worker index of the pool currently executing on this thread. */
thread_local int tlsWorkerId = -1;

/** Scoped tlsWorkerId assignment for inline (jobs=1) batches. */
struct ScopedWorkerId
{
    explicit ScopedWorkerId(int wid) : saved(tlsWorkerId)
    {
        tlsWorkerId = wid;
    }
    ~ScopedWorkerId() { tlsWorkerId = saved; }
    int saved;
};

} // namespace

int
defaultJobs()
{
    if (const char *env = std::getenv("NUPEA_BENCH_JOBS")) {
        if (*env != '\0')
            return parseJobsValue(env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepOptions
parseSweepArgs(int argc, char **argv,
               const std::vector<std::string> &extraValueOpts,
               const std::vector<std::string> &extraFlags)
{
    auto matchesExtraValue = [&](const std::string &arg, int &i) {
        for (const std::string &opt : extraValueOpts) {
            if (arg == opt) {
                if (i + 1 >= argc)
                    fatal(arg, " expects a value");
                ++i;
                return true;
            }
            if (arg.rfind(opt + "=", 0) == 0)
                return true;
        }
        return false;
    };
    auto matchesExtraFlag = [&](const std::string &arg) {
        return std::find(extraFlags.begin(), extraFlags.end(), arg) !=
               extraFlags.end();
    };

    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.jobs = parseJobsValue(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobsValue(arg.substr(7));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = parseJobsValue(arg.substr(2));
        } else if (arg == "--lanes") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.lanes = parseCountValue("--lanes", argv[++i]);
        } else if (arg.rfind("--lanes=", 0) == 0) {
            opts.lanes = parseCountValue("--lanes", arg.substr(8));
        } else if (arg == "--stall-report") {
            opts.stallReport = true;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                fatal(arg, " expects a directory");
            opts.traceDir = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceDir = arg.substr(12);
        } else if (arg == "--verify") {
            opts.verify = true;
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout, argv[0], extraValueOpts, extraFlags);
            std::exit(0);
        } else if (matchesExtraValue(arg, i) || matchesExtraFlag(arg)) {
            // Bench-specific; handled by the caller.
        } else if (arg.size() > 1 && arg[0] == '-') {
            printUsage(stderr, argv[0], extraValueOpts, extraFlags);
            fatal("unrecognized argument '", arg, "'");
        }
    }
    return opts;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options),
      jobs_(options.jobs > 0 ? options.jobs : defaultJobs())
{
    if (jobs_ > 1) {
        shards_.reserve(static_cast<std::size_t>(jobs_));
        for (int w = 0; w < jobs_; ++w)
            shards_.push_back(std::make_unique<Shard>());
        workers_.reserve(static_cast<std::size_t>(jobs_));
        for (int w = 0; w < jobs_; ++w) {
            workers_.emplace_back(
                [this, w] { workerLoop(static_cast<std::size_t>(w)); });
        }
    }
}

SweepRunner::~SweepRunner()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvWork_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

int
SweepRunner::currentWorker()
{
    return tlsWorkerId;
}

void
SweepRunner::executeTask(std::size_t task)
{
    if (poisoned_.load(std::memory_order_relaxed)) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    try {
        batch_[task]();
    } catch (...) {
        errors_[task] = std::current_exception();
        poisoned_.store(true, std::memory_order_relaxed);
    }
}

void
SweepRunner::runBatchInline()
{
    ScopedWorkerId scope(0);
    for (std::size_t i = 0; i < batch_.size(); ++i)
        executeTask(i);
}

void
SweepRunner::rethrowFirstError()
{
    batch_.clear();
    for (std::exception_ptr &err : errors_) {
        if (err) {
            std::exception_ptr first = err;
            errors_.clear();
            std::rethrow_exception(first);
        }
    }
    errors_.clear();
}

void
SweepRunner::runAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    batch_ = std::move(tasks);
    errors_.assign(batch_.size(), nullptr);
    poisoned_.store(false, std::memory_order_relaxed);
    skipped_.store(0, std::memory_order_relaxed);

    if (workers_.empty()) {
        runBatchInline();
    } else {
        const std::size_t n = batch_.size();
        // ~4 chunks per worker: big enough to amortize per-chunk
        // scheduling over tiny points, small enough that stealing
        // can still balance an uneven batch.
        const std::size_t grain = std::max<std::size_t>(
            1, n / (4 * static_cast<std::size_t>(jobs_)));

        // Publish the task count before any chunk is visible.
        remaining_.store(n, std::memory_order_relaxed);

        // Deal contiguous chunks round-robin. Shard locks, not the
        // global mutex: the batch_/errors_ writes above happen-before
        // any worker's take through the same shard lock.
        std::size_t shard = 0;
        for (std::size_t begin = 0; begin < n; begin += grain) {
            Chunk chunk{begin, std::min(begin + grain, n)};
            Shard &s = *shards_[shard++ % shards_.size()];
            std::lock_guard<std::mutex> lock(s.mu);
            s.chunks.push_back(chunk);
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            ++epoch_;
        }
        cvWork_.notify_all();

        {
            std::unique_lock<std::mutex> lock(mu_);
            cvDone_.wait(lock, [this] {
                return remaining_.load(std::memory_order_acquire) == 0;
            });
        }
    }

    rethrowFirstError();
}

bool
SweepRunner::takeChunk(std::size_t wid, Chunk &out)
{
    Shard &own = *shards_[wid];
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(own.mu);
            if (!own.chunks.empty()) {
                // Owners drain front-to-back: chunks were dealt in
                // submission order and nothing is spawned mid-batch.
                out = own.chunks.front();
                own.chunks.pop_front();
                return true;
            }
        }
        // Steal from the opposite end of the first available peer.
        bool contended = false;
        for (std::size_t k = 1; k < shards_.size(); ++k) {
            Shard &victim = *shards_[(wid + k) % shards_.size()];
            std::unique_lock<std::mutex> lock(victim.mu,
                                              std::try_to_lock);
            if (!lock.owns_lock()) {
                contended = true;
                continue;
            }
            if (victim.chunks.empty())
                continue;
            out = victim.chunks.back();
            victim.chunks.pop_back();
            return true;
        }
        if (!contended)
            return false; // every shard is drained
        std::this_thread::yield();
    }
}

void
SweepRunner::runChunk(const Chunk &chunk)
{
    for (std::size_t i = chunk.begin; i < chunk.end; ++i)
        executeTask(i);
    std::size_t count = chunk.end - chunk.begin;
    if (remaining_.fetch_sub(count, std::memory_order_acq_rel) ==
        count) {
        // Last chunk of the batch: wake the submitting thread. The
        // lock pairs with cvDone_.wait's predicate check so the
        // notification cannot be lost.
        std::lock_guard<std::mutex> lock(mu_);
        cvDone_.notify_all();
    }
}

void
SweepRunner::workerLoop(std::size_t wid)
{
    tlsWorkerId = static_cast<int>(wid);
    std::uint64_t seen_epoch = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [this, seen_epoch] {
                return shutdown_ || epoch_ != seen_epoch;
            });
            if (shutdown_)
                return;
            seen_epoch = epoch_;
        }
        Chunk chunk;
        while (takeChunk(wid, chunk))
            runChunk(chunk);
    }
}

double
SweepResult::pointSeconds() const
{
    double sum = 0.0;
    for (const PointResult &p : points)
        sum += p.wallSeconds;
    return sum;
}

namespace
{

/** A spec label turned into a safe file stem. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char ch : label) {
        bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                  (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' ||
                  ch == '_';
        out.push_back(ok ? ch : '_');
    }
    return out.empty() ? "point" : out;
}

/**
 * Per-point trace files + sinks, finished via RAII: if the sweep
 * throws mid-batch, the destructor closes every sink and removes the
 * partial files, so no truncated, invalid JSON survives on disk.
 */
class TraceFiles
{
  public:
    struct Slot
    {
        std::ofstream os;
        std::unique_ptr<ChromeTraceSink> sink;
        std::filesystem::path path;
    };

    explicit TraceFiles(std::size_t points) : slots_(points) {}

    ~TraceFiles()
    {
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (slot && slot->sink)
                slot->sink->finish();
        }
        if (completed_)
            return;
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (!slot)
                continue;
            slot->os.close();
            std::error_code ec;
            std::filesystem::remove(slot->path, ec);
        }
    }

    /** Open `<dir>/<label>.trace.json` and attach a sink for point
     *  `index`; returns the sink to hook into the point's config.
     *  Two labels sanitizing to one stem must not silently overwrite
     *  each other's file, so a colliding stem gets the point index
     *  (unique per sweep) appended; collision-free sweeps keep the
     *  plain label-derived filenames. */
    ChromeTraceSink *
    open(std::size_t index, const std::string &dir,
         const std::string &label)
    {
        auto slot = std::make_unique<Slot>();
        std::string stem = sanitizeLabel(label);
        if (!usedStems_.insert(stem).second) {
            stem += ".p" + std::to_string(index);
            NUPEA_ASSERT(usedStems_.insert(stem).second,
                         "trace file stem '", stem,
                         "' collides even with the point index");
        }
        slot->path = std::filesystem::path(dir) /
                     (stem + ".trace.json");
        slot->os.open(slot->path);
        if (!slot->os)
            fatal("cannot open trace file ", slot->path.string());
        slot->sink = std::make_unique<ChromeTraceSink>(slot->os);
        ChromeTraceSink *sink = slot->sink.get();
        slots_[index] = std::move(slot);
        return sink;
    }

    /** Close every sink's JSON document; the files are now valid and
     *  the destructor will keep them. */
    void
    finishAll()
    {
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (slot && slot->sink)
                slot->sink->finish();
        }
        completed_ = true;
    }

  private:
    std::vector<std::unique_ptr<Slot>> slots_;
    std::unordered_set<std::string> usedStems_;
    bool completed_ = false;
};

} // namespace

SweepResult
runSweep(SweepRunner &runner, const std::vector<RunSpec> &specs)
{
    const SweepOptions &opts = runner.options();
    if (!opts.traceDir.empty())
        std::filesystem::create_directories(opts.traceDir);

    // One slot per point so concurrent workers never share a stream.
    TraceFiles traces(specs.size());

    // One reusable, pre-faulted BackingStore per worker; the compiled
    // image itself is shared read-only across all workers.
    std::vector<StoreArena> arenas(
        static_cast<std::size_t>(runner.jobs()));

    // Resolve the effective per-point configs up front: observability
    // knobs apply here, and the lane grouping below compares the
    // resolved configs (trace/attribution never gate batchability).
    std::vector<MachineConfig> configs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        NUPEA_ASSERT(specs[i].cw != nullptr,
                     "RunSpec without a workload");
        configs[i] = specs[i].config;
        if (opts.observing())
            configs[i].stallAttribution = true;
        if (!opts.traceDir.empty())
            configs[i].trace =
                traces.open(i, opts.traceDir, specs[i].label);
    }

    // Group consecutive points sharing one compiled image into lane
    // batches of up to opts.lanes mutually batchable configs; with
    // lanes <= 1 every batch is a singleton (the scalar path).
    struct Batch
    {
        std::size_t begin = 0;
        std::size_t count = 0;
    };
    const std::size_t max_lanes =
        opts.lanes > 1 ? static_cast<std::size_t>(opts.lanes) : 1;
    std::vector<Batch> batches;
    for (std::size_t i = 0; i < specs.size();) {
        std::size_t j = i + 1;
        while (j < specs.size() && j - i < max_lanes &&
               specs[j].cw == specs[i].cw &&
               LaneMachine::batchable(configs[i], configs[j]))
            ++j;
        batches.push_back(Batch{i, j - i});
        i = j;
    }

    std::vector<std::function<std::vector<PointResult>()>> tasks;
    tasks.reserve(batches.size());
    for (const Batch &batch : batches) {
        tasks.push_back([&specs, &configs, &arenas, batch]() {
            int worker = SweepRunner::currentWorker();
            NUPEA_ASSERT(worker >= 0 &&
                             static_cast<std::size_t>(worker) <
                                 arenas.size(),
                         "sweep point outside a pool worker");
            StoreArena &arena =
                arenas[static_cast<std::size_t>(worker)];
            const CompiledWorkload &cw = *specs[batch.begin].cw;

            std::vector<PointResult> points(batch.count);
            for (std::size_t k = 0; k < batch.count; ++k)
                points[k].label = specs[batch.begin + k].label;

            // Acquire (and prefault) stores before starting the
            // clock: a first-touch acquire faults in the whole image
            // span, which once inflated per-point wall times ~16x on
            // points whose simulated run is shorter than the fault
            // storm. Timed span = resetTo + simulation, matching what
            // "serial-equivalent cost" means for a recycled store.
            if (batch.count == 1) {
                const MachineConfig &config = configs[batch.begin];
                BackingStore &store =
                    arena.acquire(config.memsys.memBytes,
                                  cw.image.allocated());
                auto start = std::chrono::steady_clock::now();
                points[0].run = runCompiled(cw, config, store);
                points[0].wallSeconds = secondsSince(start);
                return points;
            }

            std::vector<MachineConfig> lane_configs(
                configs.begin() +
                    static_cast<std::ptrdiff_t>(batch.begin),
                configs.begin() +
                    static_cast<std::ptrdiff_t>(batch.begin +
                                                batch.count));
            std::vector<BackingStore *> stores;
            stores.reserve(batch.count);
            for (std::size_t k = 0; k < batch.count; ++k)
                stores.push_back(&arena.acquireLane(
                    k, lane_configs[k].memsys.memBytes,
                    cw.image.allocated()));
            auto start = std::chrono::steady_clock::now();
            std::vector<BenchRun> runs =
                runCompiledLanes(cw, lane_configs, stores);
            double per_point =
                secondsSince(start) /
                static_cast<double>(batch.count);
            for (std::size_t k = 0; k < batch.count; ++k) {
                points[k].run = std::move(runs[k]);
                points[k].wallSeconds = per_point;
            }
            return points;
        });
    }

    SweepResult sweep;
    sweep.jobs = runner.jobs();
    auto start = std::chrono::steady_clock::now();
    std::vector<std::vector<PointResult>> grouped =
        runner.map(std::move(tasks));
    sweep.wallSeconds = secondsSince(start);
    sweep.points.reserve(specs.size());
    for (std::vector<PointResult> &group : grouped) {
        for (PointResult &point : group)
            sweep.points.push_back(std::move(point));
    }

    traces.finishAll();
    if (!opts.traceDir.empty())
        std::printf("[trace] wrote %zu Chrome trace files to %s\n",
                    specs.size(), opts.traceDir.c_str());
    if (opts.stallReport) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            printStallReport(*specs[i].cw, sweep.points[i].label,
                             sweep.points[i].run);
    }
    return sweep;
}

std::vector<CompiledWorkload>
compileAll(SweepRunner &runner, const std::vector<CompileSpec> &specs)
{
    std::vector<std::function<CompiledWorkload()>> tasks;
    tasks.reserve(specs.size());
    bool verify = runner.options().verify;
    for (const CompileSpec &spec : specs) {
        tasks.push_back([&spec, verify]() {
            CompileOptions options = spec.options;
            options.verify = options.verify && verify;
            return compileWorkload(spec.name, spec.topo, options);
        });
    }
    return runner.map(std::move(tasks));
}

void
printSweepFooter(const SweepResult &sweep)
{
    double serial = sweep.pointSeconds();
    double speedup =
        sweep.wallSeconds > 0.0 ? serial / sweep.wallSeconds : 1.0;
    std::printf("[sweep] %zu points on %d job%s: %.2fs wall "
                "(points sum %.2fs, %.2fx harness speedup)\n",
                sweep.points.size(), sweep.jobs,
                sweep.jobs == 1 ? "" : "s", sweep.wallSeconds, serial,
                speedup);
}

} // namespace bench
} // namespace nupea
