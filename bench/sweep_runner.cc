#include "bench/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/log.h"
#include "sim/trace.h"

namespace nupea
{
namespace bench
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
parseJobsValue(const std::string &text)
{
    try {
        int jobs = std::stoi(text);
        if (jobs < 1)
            fatal("--jobs must be >= 1, got ", text);
        return jobs;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("--jobs expects an integer, got '", text, "'");
    }
}

} // namespace

int
defaultJobs()
{
    if (const char *env = std::getenv("NUPEA_BENCH_JOBS")) {
        if (*env != '\0')
            return parseJobsValue(env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.jobs = parseJobsValue(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobsValue(arg.substr(7));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = parseJobsValue(arg.substr(2));
        } else if (arg == "--stall-report") {
            opts.stallReport = true;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                fatal(arg, " expects a directory");
            opts.traceDir = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceDir = arg.substr(12);
        } else if (arg == "--verify") {
            opts.verify = true;
        } else if (arg == "--no-verify") {
            opts.verify = false;
        }
    }
    return opts;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options),
      jobs_(options.jobs > 0 ? options.jobs : defaultJobs())
{
    if (jobs_ > 1) {
        deques_.resize(static_cast<std::size_t>(jobs_));
        workers_.reserve(static_cast<std::size_t>(jobs_));
        for (int w = 0; w < jobs_; ++w) {
            workers_.emplace_back(
                [this, w] { workerLoop(static_cast<std::size_t>(w)); });
        }
    }
}

SweepRunner::~SweepRunner()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvWork_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

void
SweepRunner::runBatchInline()
{
    for (std::size_t i = 0; i < batch_.size(); ++i)
        runTask(i);
}

void
SweepRunner::runAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    batch_ = std::move(tasks);
    errors_.assign(batch_.size(), nullptr);

    if (workers_.empty()) {
        runBatchInline();
    } else {
        {
            std::lock_guard<std::mutex> lock(mu_);
            // Deal round-robin so every worker starts with a share.
            for (std::size_t i = 0; i < batch_.size(); ++i)
                deques_[i % deques_.size()].push_back(i);
            queued_ = batch_.size();
            inFlight_ = 0;
            ++epoch_;
        }
        cvWork_.notify_all();
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvDone_.wait(lock,
                         [this] { return queued_ == 0 && inFlight_ == 0; });
        }
    }

    batch_.clear();
    for (std::exception_ptr &err : errors_) {
        if (err) {
            std::exception_ptr first = err;
            errors_.clear();
            std::rethrow_exception(first);
        }
    }
}

bool
SweepRunner::take(std::size_t wid, std::size_t &task)
{
    // Caller holds mu_.
    std::deque<std::size_t> &own = deques_[wid];
    if (!own.empty()) {
        task = own.back(); // LIFO on the owner: warm caches
        own.pop_back();
        return true;
    }
    // Steal from the front of the longest peer deque.
    std::size_t victim = deques_.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < deques_.size(); ++v) {
        if (v != wid && deques_[v].size() > best) {
            best = deques_[v].size();
            victim = v;
        }
    }
    if (victim == deques_.size())
        return false;
    task = deques_[victim].front(); // FIFO on thieves: oldest work
    deques_[victim].pop_front();
    return true;
}

void
SweepRunner::runTask(std::size_t task)
{
    try {
        batch_[task]();
    } catch (...) {
        errors_[task] = std::current_exception();
    }
}

void
SweepRunner::workerLoop(std::size_t wid)
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        std::size_t task = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [this, &seen_epoch] {
                return shutdown_ || queued_ > 0 || epoch_ != seen_epoch;
            });
            seen_epoch = epoch_;
            if (queued_ == 0) {
                if (shutdown_)
                    return;
                continue;
            }
            if (!take(wid, task))
                continue;
            --queued_;
            ++inFlight_;
        }

        runTask(task);

        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (queued_ == 0 && inFlight_ == 0)
                cvDone_.notify_all();
        }
    }
}

double
SweepResult::pointSeconds() const
{
    double sum = 0.0;
    for (const PointResult &p : points)
        sum += p.wallSeconds;
    return sum;
}

namespace
{

/** A spec label turned into a safe file stem. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char ch : label) {
        bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                  (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' ||
                  ch == '_';
        out.push_back(ok ? ch : '_');
    }
    return out.empty() ? "point" : out;
}

/** Per-point trace file + sink, kept alive for the point's run. */
struct PointTrace
{
    std::ofstream os;
    std::unique_ptr<ChromeTraceSink> sink;
};

} // namespace

SweepResult
runSweep(SweepRunner &runner, const std::vector<RunSpec> &specs)
{
    const SweepOptions &opts = runner.options();
    if (!opts.traceDir.empty())
        std::filesystem::create_directories(opts.traceDir);

    // One slot per point so concurrent workers never share a stream.
    std::vector<std::unique_ptr<PointTrace>> traces(specs.size());

    std::vector<std::function<PointResult()>> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &spec = specs[i];
        NUPEA_ASSERT(spec.cw != nullptr, "RunSpec without a workload");

        MachineConfig config = spec.config;
        if (opts.observing())
            config.stallAttribution = true;
        if (!opts.traceDir.empty()) {
            std::filesystem::path path =
                std::filesystem::path(opts.traceDir) /
                (sanitizeLabel(spec.label) + ".trace.json");
            auto trace = std::make_unique<PointTrace>();
            trace->os.open(path);
            if (!trace->os)
                fatal("cannot open trace file ", path.string());
            trace->sink = std::make_unique<ChromeTraceSink>(trace->os);
            config.trace = trace->sink.get();
            traces[i] = std::move(trace);
        }

        tasks.push_back([&spec, config]() {
            auto start = std::chrono::steady_clock::now();
            PointResult point;
            point.label = spec.label;
            point.run = runCompiled(*spec.cw, config);
            point.wallSeconds = secondsSince(start);
            return point;
        });
    }

    SweepResult sweep;
    sweep.jobs = runner.jobs();
    auto start = std::chrono::steady_clock::now();
    sweep.points = runner.map(std::move(tasks));
    sweep.wallSeconds = secondsSince(start);

    for (std::unique_ptr<PointTrace> &trace : traces) {
        if (trace)
            trace->sink->finish();
    }
    if (!opts.traceDir.empty())
        std::printf("[trace] wrote %zu Chrome trace files to %s\n",
                    specs.size(), opts.traceDir.c_str());
    if (opts.stallReport) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            printStallReport(*specs[i].cw, sweep.points[i].label,
                             sweep.points[i].run);
    }
    return sweep;
}

std::vector<CompiledWorkload>
compileAll(SweepRunner &runner, const std::vector<CompileSpec> &specs)
{
    std::vector<std::function<CompiledWorkload()>> tasks;
    tasks.reserve(specs.size());
    bool verify = runner.options().verify;
    for (const CompileSpec &spec : specs) {
        tasks.push_back([&spec, verify]() {
            CompileOptions options = spec.options;
            options.verify = options.verify && verify;
            return compileWorkload(spec.name, spec.topo, options);
        });
    }
    return runner.map(std::move(tasks));
}

void
printSweepFooter(const SweepResult &sweep)
{
    double serial = sweep.pointSeconds();
    double speedup =
        sweep.wallSeconds > 0.0 ? serial / sweep.wallSeconds : 1.0;
    std::printf("[sweep] %zu points on %d job%s: %.2fs wall "
                "(points sum %.2fs, %.2fx harness speedup)\n",
                sweep.points.size(), sweep.jobs,
                sweep.jobs == 1 ? "" : "s", sweep.wallSeconds, serial,
                speedup);
}

} // namespace bench
} // namespace nupea
