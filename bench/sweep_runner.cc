#include "bench/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_set>

#include "analysis/hazards.h"
#include "analysis/perf_model.h"
#include "analysis/profile.h"
#include "common/log.h"
#include "sim/machine_lanes.h"
#include "sim/trace.h"

namespace nupea
{
namespace bench
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
parseCountValue(const char *opt, const std::string &text)
{
    try {
        int value = std::stoi(text);
        if (value < 1)
            fatal(opt, " must be >= 1, got ", text);
        return value;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal(opt, " expects an integer, got '", text, "'");
    }
}

int
parseJobsValue(const std::string &text)
{
    return parseCountValue("--jobs", text);
}

double
parsePruneValue(const std::string &text)
{
    double value = 0.0;
    try {
        std::size_t used = 0;
        value = std::stod(text, &used);
        if (used != text.size())
            fatal("--prune expects a fraction, got '", text, "'");
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("--prune expects a fraction, got '", text, "'");
    }
    if (!(value > 0.0) || value > 1.0)
        fatal("--prune must be in (0, 1], got ", text,
              " (1 simulates everything; smaller fractions trade "
              "accuracy for speed)");
    return value;
}

void
printUsage(std::FILE *to, const char *prog,
           const std::vector<std::string> &extraValueOpts,
           const std::vector<std::string> &extraFlags)
{
    std::fprintf(to,
                 "usage: %s [options]\n"
                 "  --jobs N | -j N | -jN   worker threads (default: "
                 "NUPEA_BENCH_JOBS, else core count)\n"
                 "  --lanes N               batch up to N compatible "
                 "points per lockstep machine (default 1)\n"
                 "  --prune FRAC            statically score every point "
                 "and cycle-simulate only the best FRAC in (0, 1];\n"
                 "                          skipped points report static-"
                 "model predictions, not measurements (approximate\n"
                 "                          near throughput cliffs -- see "
                 "EXPERIMENTS.md before trusting pruned sweeps)\n"
                 "  --pnr-chains N          portfolio-placer annealing "
                 "chains per compilation (default 1 = the\n"
                 "                          single-seed placer; chains "
                 "share --jobs workers and the chosen placement\n"
                 "                          is identical for any job "
                 "count)\n"
                 "  --pnr-epoch N           moves per graph node between "
                 "portfolio sync epochs (default: placer's)\n"
                 "  --stall-report          per-point stall-attribution "
                 "tables after the sweep\n"
                 "  --trace-out DIR         one Chrome trace_event JSON "
                 "per point into DIR\n"
                 "  --verify | --no-verify  static verifier on every "
                 "compilation (default on)\n"
                 "  --help | -h             this message\n",
                 prog);
    for (const std::string &opt : extraValueOpts)
        std::fprintf(to, "  %s VALUE\n", opt.c_str());
    for (const std::string &opt : extraFlags)
        std::fprintf(to, "  %s\n", opt.c_str());
}

} // namespace

int
defaultJobs()
{
    if (const char *env = std::getenv("NUPEA_BENCH_JOBS")) {
        if (*env != '\0')
            return parseJobsValue(env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepOptions
parseSweepArgs(int argc, char **argv,
               const std::vector<std::string> &extraValueOpts,
               const std::vector<std::string> &extraFlags)
{
    auto matchesExtraValue = [&](const std::string &arg, int &i) {
        for (const std::string &opt : extraValueOpts) {
            if (arg == opt) {
                if (i + 1 >= argc)
                    fatal(arg, " expects a value");
                ++i;
                return true;
            }
            if (arg.rfind(opt + "=", 0) == 0)
                return true;
        }
        return false;
    };
    auto matchesExtraFlag = [&](const std::string &arg) {
        return std::find(extraFlags.begin(), extraFlags.end(), arg) !=
               extraFlags.end();
    };

    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.jobs = parseJobsValue(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobsValue(arg.substr(7));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = parseJobsValue(arg.substr(2));
        } else if (arg == "--lanes") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.lanes = parseCountValue("--lanes", argv[++i]);
        } else if (arg.rfind("--lanes=", 0) == 0) {
            opts.lanes = parseCountValue("--lanes", arg.substr(8));
        } else if (arg == "--prune") {
            if (i + 1 >= argc)
                fatal(arg, " expects a fraction in (0, 1]");
            opts.prune = parsePruneValue(argv[++i]);
        } else if (arg.rfind("--prune=", 0) == 0) {
            opts.prune = parsePruneValue(arg.substr(8));
        } else if (arg == "--pnr-chains") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.pnrChains = parseCountValue("--pnr-chains", argv[++i]);
        } else if (arg.rfind("--pnr-chains=", 0) == 0) {
            opts.pnrChains =
                parseCountValue("--pnr-chains", arg.substr(13));
        } else if (arg == "--pnr-epoch") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.pnrEpoch = parseCountValue("--pnr-epoch", argv[++i]);
        } else if (arg.rfind("--pnr-epoch=", 0) == 0) {
            opts.pnrEpoch =
                parseCountValue("--pnr-epoch", arg.substr(12));
        } else if (arg == "--stall-report") {
            opts.stallReport = true;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                fatal(arg, " expects a directory");
            opts.traceDir = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceDir = arg.substr(12);
        } else if (arg == "--verify") {
            opts.verify = true;
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout, argv[0], extraValueOpts, extraFlags);
            std::exit(0);
        } else if (matchesExtraValue(arg, i) || matchesExtraFlag(arg)) {
            // Bench-specific; handled by the caller.
        } else if (arg.size() > 1 && arg[0] == '-') {
            printUsage(stderr, argv[0], extraValueOpts, extraFlags);
            fatal("unrecognized argument '", arg, "'");
        }
    }
    return opts;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options),
      pool_(options.jobs > 0 ? options.jobs : defaultJobs())
{}

double
SweepResult::pointSeconds() const
{
    double sum = 0.0;
    for (const PointResult &p : points)
        sum += p.wallSeconds;
    return sum;
}

namespace
{

/** A spec label turned into a safe file stem. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char ch : label) {
        bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                  (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' ||
                  ch == '_';
        out.push_back(ok ? ch : '_');
    }
    return out.empty() ? "point" : out;
}

/**
 * Per-point trace files + sinks, finished via RAII: if the sweep
 * throws mid-batch, the destructor closes every sink and removes the
 * partial files, so no truncated, invalid JSON survives on disk.
 */
class TraceFiles
{
  public:
    struct Slot
    {
        std::ofstream os;
        std::unique_ptr<ChromeTraceSink> sink;
        std::filesystem::path path;
    };

    explicit TraceFiles(std::size_t points) : slots_(points) {}

    ~TraceFiles()
    {
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (slot && slot->sink)
                slot->sink->finish();
        }
        if (completed_)
            return;
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (!slot)
                continue;
            slot->os.close();
            std::error_code ec;
            std::filesystem::remove(slot->path, ec);
        }
    }

    /** Open `<dir>/<label>.trace.json` and attach a sink for point
     *  `index`; returns the sink to hook into the point's config.
     *  Two labels sanitizing to one stem must not silently overwrite
     *  each other's file, so a colliding stem gets the point index
     *  (unique per sweep) appended; collision-free sweeps keep the
     *  plain label-derived filenames. */
    ChromeTraceSink *
    open(std::size_t index, const std::string &dir,
         const std::string &label)
    {
        auto slot = std::make_unique<Slot>();
        std::string stem = sanitizeLabel(label);
        if (!usedStems_.insert(stem).second) {
            stem += ".p" + std::to_string(index);
            NUPEA_ASSERT(usedStems_.insert(stem).second,
                         "trace file stem '", stem,
                         "' collides even with the point index");
        }
        slot->path = std::filesystem::path(dir) /
                     (stem + ".trace.json");
        slot->os.open(slot->path);
        if (!slot->os)
            fatal("cannot open trace file ", slot->path.string());
        slot->sink = std::make_unique<ChromeTraceSink>(slot->os);
        ChromeTraceSink *sink = slot->sink.get();
        slots_[index] = std::move(slot);
        return sink;
    }

    /** Close every sink's JSON document; the files are now valid and
     *  the destructor will keep them. */
    void
    finishAll()
    {
        for (std::unique_ptr<Slot> &slot : slots_) {
            if (slot && slot->sink)
                slot->sink->finish();
        }
        completed_ = true;
    }

  private:
    std::vector<std::unique_ptr<Slot>> slots_;
    std::unordered_set<std::string> usedStems_;
    bool completed_ = false;
};

} // namespace

namespace
{

/**
 * Pick the points --prune keeps: whole non-dominated fronts on
 * (predicted system cycles, predicted total energy), ties inside a
 * front broken by predicted cycles then submission order, until the
 * budget is filled. Returns a simulate/skip flag per point.
 */
std::vector<std::uint8_t>
selectByPrediction(const std::vector<PerfPrediction> &predictions,
                   std::size_t budget)
{
    const std::size_t n = predictions.size();
    std::vector<std::uint8_t> simulate(n, 0);
    auto dominates = [&](std::size_t a, std::size_t b) {
        double ca = predictions[a].systemCycles;
        double cb = predictions[b].systemCycles;
        double ea = predictions[a].energy.total();
        double eb = predictions[b].energy.total();
        return ca <= cb && ea <= eb && (ca < cb || ea < eb);
    };

    std::vector<std::size_t> remaining(n);
    for (std::size_t i = 0; i < n; ++i)
        remaining[i] = i;
    std::size_t chosen = 0;
    while (chosen < budget && !remaining.empty()) {
        std::vector<std::size_t> front, rest;
        for (std::size_t a : remaining) {
            bool dominated = false;
            for (std::size_t b : remaining) {
                if (b != a && dominates(b, a)) {
                    dominated = true;
                    break;
                }
            }
            (dominated ? rest : front).push_back(a);
        }
        std::sort(front.begin(), front.end(),
                  [&](std::size_t a, std::size_t b) {
                      double ca = predictions[a].systemCycles;
                      double cb = predictions[b].systemCycles;
                      if (ca != cb)
                          return ca < cb;
                      return a < b;
                  });
        for (std::size_t idx : front) {
            if (chosen >= budget)
                break;
            simulate[idx] = 1;
            ++chosen;
        }
        remaining = std::move(rest);
    }
    return simulate;
}

} // namespace

SweepResult
runSweep(SweepRunner &runner, const std::vector<RunSpec> &specs)
{
    const SweepOptions &opts = runner.options();
    if (!opts.traceDir.empty())
        std::filesystem::create_directories(opts.traceDir);

    // One slot per point so concurrent workers never share a stream.
    TraceFiles traces(specs.size());

    // One reusable, pre-faulted BackingStore per worker; the compiled
    // image itself is shared read-only across all workers.
    std::vector<StoreArena> arenas(
        static_cast<std::size_t>(runner.jobs()));

    // Resolve the effective per-point configs up front: observability
    // knobs apply here, and the lane grouping below compares the
    // resolved configs (trace/attribution never gate batchability).
    // Trace files are opened later, once pruning has decided which
    // points actually simulate.
    std::vector<MachineConfig> configs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        NUPEA_ASSERT(specs[i].cw != nullptr,
                     "RunSpec without a workload");
        configs[i] = specs[i].config;
        if (opts.observing())
            configs[i].stallAttribution = true;
    }

    // --prune: score every point statically and keep only the best
    // fraction (whole Pareto fronts on predicted cycles/energy).
    std::vector<std::uint8_t> simulate(specs.size(), 1);
    std::vector<PerfPrediction> predictions;
    std::vector<ExecutionProfile> profiles; ///< one per distinct cw
    std::vector<std::size_t> cw_of(specs.size(), 0);
    if (opts.prune < 1.0 && !specs.empty()) {
        // Distinct compiled workloads, first-appearance order; each
        // profiles once (the profile is config-independent) with a
        // scratch store big enough for any of its points.
        std::vector<const CompiledWorkload *> cws;
        std::vector<std::size_t> store_bytes;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::size_t k = 0;
            while (k < cws.size() && cws[k] != specs[i].cw)
                ++k;
            if (k == cws.size()) {
                cws.push_back(specs[i].cw);
                store_bytes.push_back(0);
            }
            cw_of[i] = k;
            store_bytes[k] = std::max(store_bytes[k],
                                      configs[i].memsys.memBytes);
        }

        std::vector<std::function<ExecutionProfile()>> profile_tasks;
        profile_tasks.reserve(cws.size());
        for (std::size_t k = 0; k < cws.size(); ++k) {
            const CompiledWorkload *cw = cws[k];
            std::size_t bytes = store_bytes[k];
            profile_tasks.push_back([cw, bytes]() {
                return profileGraph(cw->graph, cw->image, bytes);
            });
        }
        profiles = runner.map(std::move(profile_tasks));

        bool clean = true;
        for (std::size_t k = 0; k < profiles.size(); ++k) {
            if (!profiles[k].clean) {
                warn(cws[k]->workload->name(),
                     ": profile did not quiesce; --prune disabled "
                     "for this sweep");
                clean = false;
            }
        }

        if (clean) {
            predictions.resize(specs.size());
            for (std::size_t i = 0; i < specs.size(); ++i) {
                const MachineConfig &c = configs[i];
                PerfModelConfig pc{c.mem, c.memsys, c.energy,
                                   c.clockDivider, c.maxOutstanding,
                                   c.fifoDepth};
                predictions[i] = predictPerformance(
                    specs[i].cw->graph, specs[i].cw->pnr.placement,
                    specs[i].cw->topo, profiles[cw_of[i]], pc);
            }

            // Surface placement hazards the model found, once per
            // distinct workload (the first point's config).
            std::vector<std::uint8_t> hazard_done(cws.size(), 0);
            for (std::size_t i = 0; i < specs.size(); ++i) {
                if (hazard_done[cw_of[i]])
                    continue;
                hazard_done[cw_of[i]] = 1;
                DiagnosticReport hazards = analyzePlacementHazards(
                    specs[i].cw->graph, specs[i].cw->pnr.placement,
                    specs[i].cw->topo, profiles[cw_of[i]],
                    predictions[i]);
                for (const Diagnostic &d : hazards.diags())
                    warn(specs[i].cw->workload->name(), ": ",
                         diagIdName(d.id), ": ", d.message);
            }

            auto budget = static_cast<std::size_t>(
                opts.prune * static_cast<double>(specs.size()));
            budget = std::max<std::size_t>(1, budget);
            simulate = selectByPrediction(predictions, budget);
            std::size_t kept = 0;
            for (std::uint8_t s : simulate)
                kept += s;
            std::printf("[prune] statically scored %zu points: "
                        "simulating %zu, dropped %zu\n",
                        specs.size(), kept, specs.size() - kept);
        }
    }

    // Open trace files for the points that will actually run.
    std::size_t traced = 0;
    if (!opts.traceDir.empty()) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!simulate[i])
                continue;
            configs[i].trace =
                traces.open(i, opts.traceDir, specs[i].label);
            ++traced;
        }
    }

    // Group simulated points sharing one compiled image into lane
    // batches of up to opts.lanes mutually batchable configs; with
    // lanes <= 1 every batch is a singleton (the scalar path). With
    // pruning, surviving points that became adjacent batch together
    // (batchability, not original adjacency, is the correctness
    // condition).
    struct Batch
    {
        std::vector<std::size_t> points;
    };
    const std::size_t max_lanes =
        opts.lanes > 1 ? static_cast<std::size_t>(opts.lanes) : 1;
    std::vector<std::size_t> run_order;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (simulate[i])
            run_order.push_back(i);
    }
    std::vector<Batch> batches;
    for (std::size_t s = 0; s < run_order.size();) {
        std::size_t first = run_order[s];
        Batch batch;
        batch.points.push_back(first);
        std::size_t t = s + 1;
        while (t < run_order.size() &&
               batch.points.size() < max_lanes &&
               specs[run_order[t]].cw == specs[first].cw &&
               LaneMachine::batchable(configs[first],
                                      configs[run_order[t]])) {
            batch.points.push_back(run_order[t]);
            ++t;
        }
        batches.push_back(std::move(batch));
        s = t;
    }

    std::vector<std::function<std::vector<PointResult>()>> tasks;
    tasks.reserve(batches.size());
    for (const Batch &batch : batches) {
        tasks.push_back([&specs, &configs, &arenas, &batch]() {
            int worker = SweepRunner::currentWorker();
            NUPEA_ASSERT(worker >= 0 &&
                             static_cast<std::size_t>(worker) <
                                 arenas.size(),
                         "sweep point outside a pool worker");
            StoreArena &arena =
                arenas[static_cast<std::size_t>(worker)];
            const std::size_t count = batch.points.size();
            const CompiledWorkload &cw = *specs[batch.points[0]].cw;

            std::vector<PointResult> points(count);
            for (std::size_t k = 0; k < count; ++k)
                points[k].label = specs[batch.points[k]].label;

            // Acquire (and prefault) stores before starting the
            // clock: a first-touch acquire faults in the whole image
            // span, which once inflated per-point wall times ~16x on
            // points whose simulated run is shorter than the fault
            // storm. Timed span = resetTo + simulation, matching what
            // "serial-equivalent cost" means for a recycled store.
            if (count == 1) {
                const MachineConfig &config = configs[batch.points[0]];
                BackingStore &store =
                    arena.acquire(config.memsys.memBytes,
                                  cw.image.allocated());
                auto start = std::chrono::steady_clock::now();
                points[0].run = runCompiled(cw, config, store);
                points[0].wallSeconds = secondsSince(start);
                return points;
            }

            std::vector<MachineConfig> lane_configs;
            lane_configs.reserve(count);
            for (std::size_t idx : batch.points)
                lane_configs.push_back(configs[idx]);
            std::vector<BackingStore *> stores;
            stores.reserve(count);
            for (std::size_t k = 0; k < count; ++k)
                stores.push_back(&arena.acquireLane(
                    k, lane_configs[k].memsys.memBytes,
                    cw.image.allocated()));
            auto start = std::chrono::steady_clock::now();
            std::vector<BenchRun> runs =
                runCompiledLanes(cw, lane_configs, stores);
            double per_point =
                secondsSince(start) / static_cast<double>(count);
            for (std::size_t k = 0; k < count; ++k) {
                points[k].run = std::move(runs[k]);
                points[k].wallSeconds = per_point;
            }
            return points;
        });
    }

    SweepResult sweep;
    sweep.jobs = runner.jobs();
    auto start = std::chrono::steady_clock::now();
    std::vector<std::vector<PointResult>> grouped =
        runner.map(std::move(tasks));
    sweep.wallSeconds = secondsSince(start);
    sweep.points.resize(specs.size());
    for (std::size_t g = 0; g < batches.size(); ++g) {
        for (std::size_t k = 0; k < batches[g].points.size(); ++k)
            sweep.points[batches[g].points[k]] =
                std::move(grouped[g][k]);
    }

    // Fill the pruned slots with the model's predictions so the
    // sweep's positional layout is unchanged for downstream tables.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (simulate[i])
            continue;
        PointResult &p = sweep.points[i];
        p.label = specs[i].label;
        p.pruned = true;
        const PerfPrediction &pred = predictions[i];
        const ExecutionProfile &prof = profiles[cw_of[i]];
        p.run.fabricCycles =
            static_cast<Cycle>(std::llround(pred.fabricCycles));
        p.run.systemCycles =
            static_cast<Cycle>(std::llround(pred.systemCycles));
        p.run.energy = pred.energy;
        p.run.avgMemLatency = pred.avgMemLatency;
        p.run.loads = prof.loads;
        p.run.stores = prof.stores;
        p.run.firings = prof.firings;
        p.run.verified = false;
        ++sweep.prunedPoints;
    }

    traces.finishAll();
    if (!opts.traceDir.empty())
        std::printf("[trace] wrote %zu Chrome trace files to %s\n",
                    traced, opts.traceDir.c_str());
    if (opts.stallReport) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (sweep.points[i].pruned)
                continue; // no machine ran; nothing to attribute
            printStallReport(*specs[i].cw, sweep.points[i].label,
                             sweep.points[i].run);
        }
    }
    return sweep;
}

std::vector<CompiledWorkload>
compileAll(SweepRunner &runner, const std::vector<CompileSpec> &specs)
{
    std::vector<std::function<CompiledWorkload()>> tasks;
    tasks.reserve(specs.size());
    bool verify = runner.options().verify;
    int pnr_chains = runner.options().pnrChains;
    int pnr_epoch = runner.options().pnrEpoch;
    TaskPool *pool = &runner.pool();
    for (const CompileSpec &spec : specs) {
        tasks.push_back([&spec, verify, pnr_chains, pnr_epoch, pool]() {
            CompileOptions options = spec.options;
            options.verify = options.verify && verify;
            // Specs that pin their own chain count (pnrChains != 0)
            // keep it; the sentinel 0 inherits the runner's CLI. The
            // placer fans its chains out on this very pool — nested
            // batches run inline on the compiling worker (TaskPool).
            if (options.pnrChains == 0) {
                options.pnrChains = pnr_chains;
                if (options.pnrEpoch == 0)
                    options.pnrEpoch = pnr_epoch;
            }
            if (options.pnrChains > 1 && options.pnrPool == nullptr)
                options.pnrPool = pool;
            return compileWorkload(spec.name, spec.topo, options);
        });
    }
    return runner.map(std::move(tasks));
}

void
printSweepFooter(const SweepResult &sweep)
{
    double serial = sweep.pointSeconds();
    double speedup =
        sweep.wallSeconds > 0.0 ? serial / sweep.wallSeconds : 1.0;
    std::printf("[sweep] %zu points on %d job%s: %.2fs wall "
                "(points sum %.2fs, %.2fx harness speedup)\n",
                sweep.points.size(), sweep.jobs,
                sweep.jobs == 1 ? "" : "s", sweep.wallSeconds, serial,
                speedup);
    if (sweep.prunedPoints > 0)
        std::printf("[sweep] %zu of those points were pruned: their "
                    "numbers are static-model predictions\n",
                    sweep.prunedPoints);
}

} // namespace bench
} // namespace nupea
