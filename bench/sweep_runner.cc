#include "bench/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.h"

namespace nupea
{
namespace bench
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
parseJobsValue(const std::string &text)
{
    try {
        int jobs = std::stoi(text);
        if (jobs < 1)
            fatal("--jobs must be >= 1, got ", text);
        return jobs;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("--jobs expects an integer, got '", text, "'");
    }
}

} // namespace

int
defaultJobs()
{
    if (const char *env = std::getenv("NUPEA_BENCH_JOBS")) {
        if (*env != '\0')
            return parseJobsValue(env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                fatal(arg, " expects a value");
            opts.jobs = parseJobsValue(argv[++i]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobsValue(arg.substr(7));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = parseJobsValue(arg.substr(2));
        }
    }
    return opts;
}

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_(options.jobs > 0 ? options.jobs : defaultJobs())
{
    if (jobs_ > 1) {
        deques_.resize(static_cast<std::size_t>(jobs_));
        workers_.reserve(static_cast<std::size_t>(jobs_));
        for (int w = 0; w < jobs_; ++w) {
            workers_.emplace_back(
                [this, w] { workerLoop(static_cast<std::size_t>(w)); });
        }
    }
}

SweepRunner::~SweepRunner()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvWork_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

void
SweepRunner::runBatchInline()
{
    for (std::size_t i = 0; i < batch_.size(); ++i)
        runTask(i);
}

void
SweepRunner::runAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    batch_ = std::move(tasks);
    errors_.assign(batch_.size(), nullptr);

    if (workers_.empty()) {
        runBatchInline();
    } else {
        {
            std::lock_guard<std::mutex> lock(mu_);
            // Deal round-robin so every worker starts with a share.
            for (std::size_t i = 0; i < batch_.size(); ++i)
                deques_[i % deques_.size()].push_back(i);
            queued_ = batch_.size();
            inFlight_ = 0;
            ++epoch_;
        }
        cvWork_.notify_all();
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvDone_.wait(lock,
                         [this] { return queued_ == 0 && inFlight_ == 0; });
        }
    }

    batch_.clear();
    for (std::exception_ptr &err : errors_) {
        if (err) {
            std::exception_ptr first = err;
            errors_.clear();
            std::rethrow_exception(first);
        }
    }
}

bool
SweepRunner::take(std::size_t wid, std::size_t &task)
{
    // Caller holds mu_.
    std::deque<std::size_t> &own = deques_[wid];
    if (!own.empty()) {
        task = own.back(); // LIFO on the owner: warm caches
        own.pop_back();
        return true;
    }
    // Steal from the front of the longest peer deque.
    std::size_t victim = deques_.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < deques_.size(); ++v) {
        if (v != wid && deques_[v].size() > best) {
            best = deques_[v].size();
            victim = v;
        }
    }
    if (victim == deques_.size())
        return false;
    task = deques_[victim].front(); // FIFO on thieves: oldest work
    deques_[victim].pop_front();
    return true;
}

void
SweepRunner::runTask(std::size_t task)
{
    try {
        batch_[task]();
    } catch (...) {
        errors_[task] = std::current_exception();
    }
}

void
SweepRunner::workerLoop(std::size_t wid)
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        std::size_t task = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [this, &seen_epoch] {
                return shutdown_ || queued_ > 0 || epoch_ != seen_epoch;
            });
            seen_epoch = epoch_;
            if (queued_ == 0) {
                if (shutdown_)
                    return;
                continue;
            }
            if (!take(wid, task))
                continue;
            --queued_;
            ++inFlight_;
        }

        runTask(task);

        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (queued_ == 0 && inFlight_ == 0)
                cvDone_.notify_all();
        }
    }
}

double
SweepResult::pointSeconds() const
{
    double sum = 0.0;
    for (const PointResult &p : points)
        sum += p.wallSeconds;
    return sum;
}

SweepResult
runSweep(SweepRunner &runner, const std::vector<RunSpec> &specs)
{
    std::vector<std::function<PointResult()>> tasks;
    tasks.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        NUPEA_ASSERT(spec.cw != nullptr, "RunSpec without a workload");
        tasks.push_back([&spec]() {
            auto start = std::chrono::steady_clock::now();
            PointResult point;
            point.label = spec.label;
            point.run = runCompiled(*spec.cw, spec.config);
            point.wallSeconds = secondsSince(start);
            return point;
        });
    }

    SweepResult sweep;
    sweep.jobs = runner.jobs();
    auto start = std::chrono::steady_clock::now();
    sweep.points = runner.map(std::move(tasks));
    sweep.wallSeconds = secondsSince(start);
    return sweep;
}

std::vector<CompiledWorkload>
compileAll(SweepRunner &runner, const std::vector<CompileSpec> &specs)
{
    std::vector<std::function<CompiledWorkload()>> tasks;
    tasks.reserve(specs.size());
    for (const CompileSpec &spec : specs) {
        tasks.push_back([&spec]() {
            return compileWorkload(spec.name, spec.topo, spec.options);
        });
    }
    return runner.map(std::move(tasks));
}

void
printSweepFooter(const SweepResult &sweep)
{
    double serial = sweep.pointSeconds();
    double speedup =
        sweep.wallSeconds > 0.0 ? serial / sweep.wallSeconds : 1.0;
    std::printf("[sweep] %zu points on %d job%s: %.2fs wall "
                "(points sum %.2fs, %.2fx harness speedup)\n",
                sweep.points.size(), sweep.jobs,
                sweep.jobs == 1 ? "" : "s", sweep.wallSeconds, serial,
                speedup);
}

} // namespace bench
} // namespace nupea
